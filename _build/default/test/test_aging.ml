(* Geriatrix-style ager: utilization convergence, determinism, churn
   accounting, and the headline fragmentation divergence (Figure 3 in
   miniature). *)

open Repro_util
module Device = Repro_pmem.Device
module Types = Repro_vfs.Types
module Registry = Repro_baselines.Registry
module G = Repro_aging.Geriatrix

let age_fs ?(seed = 0xA6E) ?(size = 128 * Units.mib) ?(churn = 1) name util =
  let f = Registry.by_name name in
  let dev = Device.create ~size () in
  let h = f.make dev (Types.config ~cpus:4 ~inodes_per_cpu:4096 ()) in
  let r = G.age h ~seed ~profile:G.agrawal ~target_util:util ~churn_bytes:(churn * Units.gib) () in
  (h, r)

let test_reaches_target () =
  let _, r = age_fs "WineFS" 0.6 in
  Alcotest.(check bool)
    (Printf.sprintf "utilization %.2f within [0.5, 0.75]" r.utilization)
    true
    (r.utilization >= 0.5 && r.utilization <= 0.75);
  Alcotest.(check bool) "live files" true (r.live_files > 0);
  Alcotest.(check bool) "churn volume written" true (r.bytes_written >= Units.gib)

let test_deterministic () =
  let _, a = age_fs ~seed:7 "WineFS" 0.5 in
  let _, b = age_fs ~seed:7 "WineFS" 0.5 in
  Alcotest.(check int) "same creates" a.files_created b.files_created;
  Alcotest.(check int) "same deletes" a.files_deleted b.files_deleted;
  Alcotest.(check int) "same census" a.aligned_free_2m b.aligned_free_2m

let test_seed_changes_run () =
  let _, a = age_fs ~seed:7 "WineFS" 0.5 in
  let _, b = age_fs ~seed:8 "WineFS" 0.5 in
  Alcotest.(check bool) "different seed differs" true (a.files_created <> b.files_created)

let test_winefs_resists_fragmentation () =
  (* The paper's core claim at this scale: WineFS retains far more of its
     free space as aligned 2MB regions than NOVA after identical churn. *)
  let _, winefs = age_fs ~churn:4 "WineFS" 0.7 in
  let _, nova = age_fs ~churn:4 "NOVA" 0.7 in
  Alcotest.(check bool)
    (Printf.sprintf "WineFS %.2f > NOVA %.2f" winefs.free_frag_ratio nova.free_frag_ratio)
    true
    (winefs.free_frag_ratio > nova.free_frag_ratio)

let test_fs_usable_after_aging () =
  let (Repro_vfs.Fs_intf.Handle ((module F), fs)), _ = age_fs "WineFS" 0.6 in
  let c = Cpu.make ~id:0 () in
  let fd = F.create fs c "/after-aging" in
  ignore (F.pwrite fs c fd ~off:0 ~src:"still works");
  Alcotest.(check string) "fs usable" "still works" (F.pread fs c fd ~off:0 ~len:11);
  F.close fs c fd;
  let s = F.statfs fs in
  Alcotest.(check bool) "accounting consistent" true (s.free + s.used = s.capacity)

let test_census () =
  let h, r = age_fs "WineFS" 0.5 in
  let ratio, aligned = G.census h in
  Alcotest.(check (float 0.0001)) "census matches report" r.free_frag_ratio ratio;
  Alcotest.(check int) "aligned matches" r.aligned_free_2m aligned;
  Alcotest.(check bool) "ratio in [0,1]" true (ratio >= 0. && ratio <= 1.)

let test_wang_profile () =
  let f = Registry.by_name "WineFS" in
  let dev = Device.create ~size:(128 * Units.mib) () in
  let h = f.make dev (Types.config ~cpus:4 ~inodes_per_cpu:4096 ()) in
  let r = G.age h ~profile:G.wang_hpc ~target_util:0.5 ~churn_bytes:Units.gib () in
  Alcotest.(check bool) "wang profile ages" true (r.files_created > 0 && r.utilization > 0.35)

let suite =
  [
    Alcotest.test_case "reaches target utilization" `Quick test_reaches_target;
    Alcotest.test_case "deterministic from seed" `Quick test_deterministic;
    Alcotest.test_case "seed changes run" `Quick test_seed_changes_run;
    Alcotest.test_case "winefs resists fragmentation" `Slow test_winefs_resists_fragmentation;
    Alcotest.test_case "fs usable after aging" `Quick test_fs_usable_after_aging;
    Alcotest.test_case "census" `Quick test_census;
    Alcotest.test_case "wang-hpc profile" `Quick test_wang_profile;
  ]
