(* Generic file-system contract tests: every registered file system
   (WineFS strict/relaxed + six baselines) must satisfy the same POSIX-ish
   semantics through the common interface. *)

open Repro_util
module Device = Repro_pmem.Device
module Types = Repro_vfs.Types
module Fs_intf = Repro_vfs.Fs_intf
module Registry = Repro_baselines.Registry

let mib = Units.mib

type visitor = { visit : 'a. (module Fs_intf.S with type t = 'a) -> 'a -> unit }

let with_fs (factory : Registry.factory) (v : visitor) =
  let dev = Device.create ~cost:Device.Cost.free ~size:(64 * mib) () in
  let cfg = Types.config ~cpus:2 ~inodes_per_cpu:512 () in
  let (Fs_intf.Handle ((module F), fs)) = factory.make dev cfg in
  v.visit (module F) fs

let contract (factory : Registry.factory) () =
  with_fs factory
    { visit = (fun (type a) (module F : Fs_intf.S with type t = a) (fs : a) ->
      let c = Cpu.make ~id:0 () in
      (* Basic data path. *)
      let fd = F.create fs c "/file" in
      Alcotest.(check int) "write" 5 (F.pwrite fs c fd ~off:0 ~src:"hello");
      Alcotest.(check string) "read" "hello" (F.pread fs c fd ~off:0 ~len:5);
      Alcotest.(check int) "append" 6 (F.append fs c fd ~src:" world");
      F.fsync fs c fd;
      Alcotest.(check string) "combined" "hello world" (F.pread fs c fd ~off:0 ~len:11);
      Alcotest.(check int) "size" 11 (F.file_size fs fd);
      (* Overwrite. *)
      ignore (F.pwrite fs c fd ~off:6 ~src:"WINES");
      F.fsync fs c fd;
      Alcotest.(check string) "overwrite" "hello WINES" (F.pread fs c fd ~off:0 ~len:11);
      F.close fs c fd;
      (* Namespace. *)
      F.mkdir fs c "/d";
      F.mkdir fs c "/d/e";
      let fd2 = F.create fs c "/d/e/x" in
      ignore (F.pwrite fs c fd2 ~off:0 ~src:"abc");
      F.fsync fs c fd2;
      F.close fs c fd2;
      Alcotest.(check bool) "exists" true (F.exists fs c "/d/e/x");
      Alcotest.(check bool) "not exists" false (F.exists fs c "/d/e/y");
      Alcotest.(check (list string)) "readdir" [ "e" ] (F.readdir fs c "/d");
      let st = F.stat fs c "/d/e/x" in
      Alcotest.(check int) "stat size" 3 st.Types.st_size;
      Alcotest.(check bool) "stat kind" true (st.st_kind = Types.Regular);
      (* Rename (including across directories, replacing a target). *)
      F.rename fs c ~old_path:"/d/e/x" ~new_path:"/d/x2";
      Alcotest.(check bool) "rename moved" true (F.exists fs c "/d/x2");
      Alcotest.(check bool) "rename source gone" false (F.exists fs c "/d/e/x");
      let fd3 = F.create fs c "/victim" in
      ignore (F.pwrite fs c fd3 ~off:0 ~src:"victim");
      F.fsync fs c fd3;
      F.close fs c fd3;
      F.rename fs c ~old_path:"/d/x2" ~new_path:"/victim";
      let fd4 = F.openf fs c "/victim" Types.o_rdonly in
      Alcotest.(check string) "replace target content" "abc" (F.pread fs c fd4 ~off:0 ~len:3);
      F.close fs c fd4;
      (* Unlink and errors. *)
      F.unlink fs c "/victim";
      Alcotest.(check bool) "unlinked" false (F.exists fs c "/victim");
      (match F.unlink fs c "/victim" with
      | () -> Alcotest.fail "unlink of missing file must fail"
      | exception Types.Error (ENOENT, _) -> ());
      (match F.openf fs c "/nope" Types.o_rdonly with
      | _ -> Alcotest.fail "open of missing file must fail"
      | exception Types.Error (ENOENT, _) -> ());
      (match F.mkdir fs c "/d" with
      | () -> Alcotest.fail "mkdir of existing dir must fail"
      | exception Types.Error (EEXIST, _) -> ());
      (* rmdir semantics. *)
      (match F.rmdir fs c "/d" with
      | () -> Alcotest.fail "rmdir of non-empty dir must fail"
      | exception Types.Error (ENOTEMPTY, _) -> ());
      F.rmdir fs c "/d/e";
      F.rmdir fs c "/d";
      (* Truncate and sparse behaviour. *)
      let fd5 = F.create fs c "/t" in
      ignore (F.pwrite fs c fd5 ~off:0 ~src:(String.make 10000 'z'));
      F.fsync fs c fd5;
      F.ftruncate fs c fd5 100;
      Alcotest.(check int) "truncated size" 100 (F.file_size fs fd5);
      Alcotest.(check string) "truncated content" (String.make 4 'z')
        (F.pread fs c fd5 ~off:0 ~len:4);
      F.ftruncate fs c fd5 9000;
      Alcotest.(check int) "extended size" 9000 (F.file_size fs fd5);
      F.close fs c fd5;
      (* fallocate. *)
      let fd6 = F.create fs c "/fa" in
      F.fallocate fs c fd6 ~off:0 ~len:(3 * mib);
      Alcotest.(check int) "fallocate size" (3 * mib) (F.file_size fs fd6);
      let st = F.stat fs c "/fa" in
      Alcotest.(check bool) "fallocate blocks" true (st.st_blocks >= 3 * mib);
      F.close fs c fd6;
      (* Space accounting sanity. *)
      let s = F.statfs fs in
      Alcotest.(check bool) "used > 0" true (s.used > 0);
      Alcotest.(check bool) "free + used = capacity" true (s.free + s.used = s.capacity)); }

let mmap_contract (factory : Registry.factory) () =
  with_fs factory
    { visit = (fun (type a) (module F : Fs_intf.S with type t = a) (fs : a) ->
      let c = Cpu.make ~id:0 () in
      let fd = F.create fs c "/m" in
      F.fallocate fs c fd ~off:0 ~len:(4 * mib);
      let vm = Repro_memsim.Vmem.create (F.device fs) in
      let r = Repro_memsim.Vmem.mmap vm ~len:(4 * mib) ~backing:(F.mmap_backing fs fd) () in
      Repro_memsim.Vmem.write vm c r ~off:mib ~src:"mapped data";
      Repro_memsim.Vmem.persist vm c r ~off:mib ~len:11;
      Alcotest.(check string) "mmap write visible via pread" "mapped data"
        (F.pread fs c fd ~off:mib ~len:11);
      (* Every registered FS must survive a full prefault. *)
      Repro_memsim.Vmem.prefault vm c r;
      let total =
        Repro_memsim.Vmem.huge_mapped_bytes vm r
        + (Repro_memsim.Vmem.base_mapped_pages vm r * Units.base_page)
      in
      Alcotest.(check bool) "fully mapped" true (total >= 4 * mib);
      F.close fs c fd); }

let throughput_sanity (factory : Registry.factory) () =
  (* With the real cost model, doing more work must cost more time. *)
  let dev = Device.create ~size:(32 * mib) () in
  let cfg = Types.config ~cpus:2 ~inodes_per_cpu:256 () in
  let (Fs_intf.Handle ((module F), fs)) = factory.make dev cfg in
  let c = Cpu.make ~id:0 () in
  let fd = F.create fs c "/w" in
  let t0 = Cpu.now c in
  ignore (F.pwrite fs c fd ~off:0 ~src:(String.make 4096 'a'));
  let t1 = Cpu.now c in
  ignore (F.pwrite fs c fd ~off:0 ~src:(String.make (256 * 1024) 'b'));
  let t2 = Cpu.now c in
  Alcotest.(check bool) "4K write costs time" true (t1 > t0);
  Alcotest.(check bool) "256K write costs more" true (t2 - t1 > t1 - t0);
  F.close fs c fd

let suite =
  List.concat_map
    (fun (factory : Registry.factory) ->
      [
        Alcotest.test_case (factory.fs_name ^ " contract") `Quick (contract factory);
        Alcotest.test_case (factory.fs_name ^ " mmap") `Quick (mmap_contract factory);
        Alcotest.test_case (factory.fs_name ^ " costs") `Quick (throughput_sanity factory);
      ])
    Registry.all
