(* Memory-subsystem simulator: mappings, faults, hugepage eligibility,
   TLB behaviour, cache effects. *)

open Repro_util
module Device = Repro_pmem.Device
module Vmem = Repro_memsim.Vmem
module Lru = Repro_memsim.Lru_sets

let cpu () = Cpu.make ~id:0 ()
let huge = Units.huge_page

(* A backing that maps file offsets 1:1 to a physical base. *)
let flat_backing ?(base = 4 * Units.mib) ?(huge_capable = true) () : Vmem.backing =
 fun _cpu ~file_off ~huge_ok ->
  if huge_ok && huge_capable then Vmem.Huge (base + file_off)
  else Vmem.Base (base + Units.round_down file_off Units.base_page)

let test_lru_sets () =
  let l = Lru.create ~sets:1 ~ways:2 in
  Alcotest.(check bool) "miss" false (Lru.access l 1);
  Alcotest.(check bool) "hit" true (Lru.access l 1);
  ignore (Lru.access l 2);
  ignore (Lru.access l 3) (* evicts 1 (LRU) *);
  Alcotest.(check bool) "evicted" false (Lru.access l 1);
  Lru.invalidate l 3;
  Alcotest.(check bool) "invalidated" false (Lru.probe l 3)

let test_huge_mapping_faults_once () =
  let dev = Device.create ~cost:Device.Cost.free ~size:(16 * Units.mib) () in
  let vm = Vmem.create dev in
  let c = cpu () in
  let r = Vmem.mmap vm ~len:(4 * huge) ~backing:(flat_backing ()) () in
  Vmem.prefault vm c r;
  let counters = Vmem.counters vm in
  Alcotest.(check int) "4 faults for 8MB" 4 (Counters.get counters "mm.page_faults");
  Alcotest.(check int) "all huge" 4 (Counters.get counters "mm.huge_faults");
  Alcotest.(check int) "huge bytes" (4 * huge) (Vmem.huge_mapped_bytes vm r)

let test_base_mapping_faults_per_page () =
  let dev = Device.create ~cost:Device.Cost.free ~size:(16 * Units.mib) () in
  let vm = Vmem.create dev in
  let c = cpu () in
  let r = Vmem.mmap vm ~len:huge ~backing:(flat_backing ~huge_capable:false ()) () in
  Vmem.prefault vm c r;
  Alcotest.(check int) "512 faults for 2MB" 512
    (Counters.get (Vmem.counters vm) "mm.page_faults");
  Alcotest.(check int) "no huge" 0 (Vmem.huge_mapped_bytes vm r)

let test_unaligned_backing_rejected () =
  let dev = Device.create ~cost:Device.Cost.free ~size:(16 * Units.mib) () in
  let vm = Vmem.create dev in
  let c = cpu () in
  let bad : Vmem.backing =
   fun _ ~file_off ~huge_ok -> if huge_ok then Vmem.Huge (4096 + file_off) else Vmem.Base 4096
  in
  let r = Vmem.mmap vm ~len:huge ~backing:bad () in
  Alcotest.(check bool) "unaligned hugepage rejected" true
    (match Vmem.prefault vm c r with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_data_roundtrip () =
  let dev = Device.create ~cost:Device.Cost.free ~size:(16 * Units.mib) () in
  let vm = Vmem.create dev in
  let c = cpu () in
  let r = Vmem.mmap vm ~len:(2 * huge) ~backing:(flat_backing ()) () in
  Vmem.write vm c r ~off:12345 ~src:"across the mapping";
  let buf = Bytes.create 18 in
  Vmem.read_into vm c r ~off:12345 ~dst:buf ~dst_off:0 ~len:18;
  Alcotest.(check string) "mmap rw" "across the mapping" (Bytes.to_string buf);
  Vmem.write_u64 vm c r ~off:(huge - 4) 77L (* straddles a chunk boundary *);
  Alcotest.(check int64) "straddling u64" 77L (Vmem.read_u64 vm c r ~off:(huge - 4))

let test_fault_cost_gap () =
  (* The Figure 2 mechanism: base-page mapping of the same region costs
     much more to first-touch than a hugepage mapping. *)
  let dev = Device.create ~size:(32 * Units.mib) () in
  let vm = Vmem.create dev in
  let c1 = cpu () in
  let r1 = Vmem.mmap vm ~len:(2 * huge) ~backing:(flat_backing ()) () in
  let t0 = Cpu.now c1 in
  Vmem.prefault vm c1 r1;
  let huge_cost = Cpu.now c1 - t0 in
  let vm2 = Vmem.create dev in
  let c2 = cpu () in
  let r2 = Vmem.mmap vm2 ~len:(2 * huge) ~backing:(flat_backing ~huge_capable:false ()) () in
  let t0 = Cpu.now c2 in
  Vmem.prefault vm2 c2 r2;
  let base_cost = Cpu.now c2 - t0 in
  Alcotest.(check bool) "base faulting is >100x dearer" true (base_cost > 100 * huge_cost)

let test_tlb_miss_gap () =
  (* Pre-faulted random reads: base pages take many more TLB misses. *)
  let dev = Device.create ~size:(64 * Units.mib) () in
  let run huge_capable =
    let vm = Vmem.create dev in
    let c = cpu () in
    let r = Vmem.mmap vm ~len:(16 * huge) ~backing:(flat_backing ~huge_capable ()) () in
    Vmem.prefault vm c r;
    let rng = Rng.create 9 in
    Counters.reset (Vmem.counters vm);
    for _ = 1 to 5000 do
      Vmem.read vm c r ~off:(Rng.int rng (16 * huge / 64) * 64) ~len:8
    done;
    Counters.get (Vmem.counters vm) "mm.tlb_misses"
  in
  let huge_misses = run true and base_misses = run false in
  Alcotest.(check bool)
    (Printf.sprintf "base TLB misses (%d) >> huge (%d)" base_misses huge_misses)
    true
    (base_misses > 20 * max 1 huge_misses)

let test_zero_on_fault () =
  let dev = Device.create ~cost:Device.Cost.free ~size:(16 * Units.mib) () in
  let c = cpu () in
  (* Pre-dirty the physical page, then fault with zero_on_fault. *)
  Device.write_string dev c ~off:(4 * Units.mib) "dirty";
  let vm = Vmem.create dev in
  let r =
    Vmem.mmap vm ~len:Units.base_page
      ~backing:(flat_backing ~huge_capable:false ())
      ~zero_on_fault:true ()
  in
  let buf = Bytes.create 5 in
  Vmem.read_into vm c r ~off:0 ~dst:buf ~dst_off:0 ~len:5;
  Alcotest.(check string) "zeroed at fault" "\000\000\000\000\000" (Bytes.to_string buf)

let test_munmap_drops () =
  let dev = Device.create ~cost:Device.Cost.free ~size:(16 * Units.mib) () in
  let vm = Vmem.create dev in
  let c = cpu () in
  let r = Vmem.mmap vm ~len:huge ~backing:(flat_backing ()) () in
  Vmem.prefault vm c r;
  Vmem.munmap vm r;
  Alcotest.(check bool) "access after munmap rejected" true
    (match Vmem.read vm c r ~off:0 ~len:8 with
    | () -> false
    | exception Invalid_argument _ -> true)

(* Property: random reads/writes through a mapping agree with a model
   buffer, across hugepage and base-page mappings and u64 accessors. *)
let prop_mmap_model =
  QCheck.Test.make ~name:"mmap data path agrees with model buffer" ~count:60
    QCheck.(pair bool (list_of_size Gen.(1 -- 40) (tup3 bool (int_bound 8000) (int_range 1 300))))
    (fun (huge_capable, ops) ->
      let dev = Device.create ~cost:Device.Cost.free ~size:(16 * Units.mib) () in
      let vm = Vmem.create dev in
      let c = cpu () in
      let len = 2 * huge in
      let r = Vmem.mmap vm ~len ~backing:(flat_backing ~huge_capable ()) () in
      let model = Bytes.make len '\000' in
      let ch = ref 'a' in
      List.iter
        (fun (is_write, off, n) ->
          let off = min off (len - n) in
          if is_write then begin
            let data = String.make n !ch in
            ch := (if !ch = 'z' then 'a' else Char.chr (Char.code !ch + 1));
            Vmem.write vm c r ~off ~src:data;
            Bytes.blit_string data 0 model off n
          end
          else begin
            let buf = Bytes.create n in
            Vmem.read_into vm c r ~off ~dst:buf ~dst_off:0 ~len:n;
            if Bytes.sub model off n <> buf then
              QCheck.Test.fail_reportf "mismatch at off=%d len=%d" off n
          end)
        ops;
      (* Full sweep must agree. *)
      let whole = Bytes.create len in
      Vmem.read_into vm c r ~off:0 ~dst:whole ~dst_off:0 ~len;
      whole = model)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_mmap_model;
    Alcotest.test_case "lru sets" `Quick test_lru_sets;
    Alcotest.test_case "huge mapping faults once per 2MB" `Quick test_huge_mapping_faults_once;
    Alcotest.test_case "base mapping faults per 4KB" `Quick test_base_mapping_faults_per_page;
    Alcotest.test_case "unaligned hugepage rejected" `Quick test_unaligned_backing_rejected;
    Alcotest.test_case "data roundtrip" `Quick test_data_roundtrip;
    Alcotest.test_case "fault cost gap (fig 2)" `Quick test_fault_cost_gap;
    Alcotest.test_case "tlb miss gap (fig 4)" `Quick test_tlb_miss_gap;
    Alcotest.test_case "zero on fault" `Quick test_zero_on_fault;
    Alcotest.test_case "munmap" `Quick test_munmap_drops;
  ]
