(* Application workload models: correctness of the stores and drivers on
   top of WineFS, and the paper's qualitative effects. *)

open Repro_util
module Device = Repro_pmem.Device
module Types = Repro_vfs.Types
module Fs_intf = Repro_vfs.Fs_intf
module Registry = Repro_baselines.Registry
module KV = Repro_workloads.Kvstore
module Ycsb = Repro_workloads.Ycsb
module Lmdb = Repro_workloads.Lmdb_model
module Pmemkv = Repro_workloads.Pmemkv_model
module Part = Repro_workloads.Part_model
module Fb = Repro_workloads.Filebench
module Pg = Repro_workloads.Pgbench
module Wt = Repro_workloads.Wiredtiger_model
module Micro = Repro_workloads.Micro

let winefs ?(size = 192 * Units.mib) () =
  let dev = Device.create ~size () in
  Registry.winefs.make dev (Types.config ~cpus:4 ~inodes_per_cpu:4096 ())

let cpu () = Cpu.make ~id:0 ()

let test_kvstore () =
  let store = KV.create (winefs ()) ~segment_bytes:(4 * Units.mib) ~value_bytes:512 () in
  let c = cpu () in
  for k = 0 to 999 do
    KV.insert store c ~key:k
  done;
  Alcotest.(check int) "count" 1000 (KV.key_count store);
  Alcotest.(check bool) "read hit" true (KV.read store c ~key:500);
  Alcotest.(check bool) "read miss" false (KV.read store c ~key:5000);
  KV.update store c ~key:500;
  Alcotest.(check int) "update keeps count" 1000 (KV.key_count store);
  Alcotest.(check int) "scan" 10 (KV.scan store c ~key:990 ~count:10);
  Alcotest.(check int) "scan clipped at end" 5 (KV.scan store c ~key:995 ~count:10)

let test_ycsb_mixes () =
  let store = KV.create (winefs ()) ~segment_bytes:(4 * Units.mib) ~value_bytes:256 () in
  let kv =
    {
      Ycsb.kv_read = (fun c k -> ignore (KV.read store c ~key:k));
      kv_update = (fun c k -> KV.update store c ~key:k);
      kv_insert = (fun c k -> KV.insert store c ~key:k);
      kv_scan = (fun c k n -> ignore (KV.scan store c ~key:k ~count:n));
    }
  in
  let load = Ycsb.run kv Load ~records:2000 ~operations:0 in
  Alcotest.(check int) "load ops" 2000 load.ops;
  Alcotest.(check int) "loaded" 2000 (KV.key_count store);
  List.iter
    (fun w ->
      let r = Ycsb.run kv w ~records:2000 ~operations:1000 in
      Alcotest.(check bool) (Ycsb.name w ^ " ran") true (r.ops = 1000 && r.kops_per_s > 0.))
    [ Ycsb.A; B; C; D; E; F ]

let test_lmdb () =
  let db = Lmdb.create (winefs ()) ~map_bytes:(32 * Units.mib) ~value_bytes:512 () in
  let r = Lmdb.fillseqbatch db ~batch:50 ~keys:2000 () in
  Alcotest.(check int) "all keys" 2000 r.keys;
  Alcotest.(check bool) "throughput" true (r.kops_per_s > 0.);
  let c = cpu () in
  Alcotest.(check bool) "read back" true (Lmdb.read db c ~key:1234);
  Alcotest.(check bool) "missing" false (Lmdb.read db c ~key:99999);
  (* Sparse-file + WineFS: the fault path should have produced hugepages,
     not 512 base faults per 2MB. *)
  Alcotest.(check bool)
    (Printf.sprintf "few faults (%d)" r.page_faults)
    true
    (r.page_faults < 200)

let test_lmdb_fault_gap () =
  (* xfs-DAX never places extents 2MB-aligned (footnote 1), so even on a
     clean file system LMDB's on-demand faults are all base-page faults;
     on aged ext4-DAX the same gap appears (fig7/Table 2 in the bench). *)
  let run factory =
    let dev = Device.create ~size:(192 * Units.mib) () in
    let h = (factory : Registry.factory).make dev (Types.config ~cpus:4 ~inodes_per_cpu:4096 ()) in
    let db = Lmdb.create h ~map_bytes:(32 * Units.mib) ~value_bytes:512 () in
    (Lmdb.fillseqbatch db ~keys:4000 ()).page_faults
  in
  let winefs_faults = run Registry.winefs and xfs_faults = run Registry.xfs_dax in
  Alcotest.(check bool)
    (Printf.sprintf "xfs %d >> winefs %d (Table 2)" xfs_faults winefs_faults)
    true
    (xfs_faults > 20 * max 1 winefs_faults)

let test_pmemkv () =
  let db = Pmemkv.create (winefs ()) ~pool_bytes:(8 * Units.mib) ~value_bytes:1024 () in
  let r = Pmemkv.fillseq db ~threads:4 ~keys:4000 in
  Alcotest.(check int) "keys" 4000 r.keys;
  let c = cpu () in
  Alcotest.(check bool) "get" true (Pmemkv.get db c ~key:3999);
  Alcotest.(check bool) "get miss" false (Pmemkv.get db c ~key:12345)

let test_part () =
  let t = Part.create (winefs ()) ~pool_bytes:(24 * Units.mib) () in
  let c = cpu () in
  for i = 0 to 4999 do
    Part.insert t c ~key:(i * 977) ~value:i
  done;
  Alcotest.(check (option int)) "lookup" (Some 42) (Part.lookup t c ~key:(42 * 977));
  Alcotest.(check (option int)) "miss" None (Part.lookup t c ~key:123456789);
  let r = Part.lookup_latency_cdf t ~keys:1000 ~hot_set:100 ~lookups:2000 () in
  Alcotest.(check int) "lookups timed" 2000 (Histogram.count r.hist);
  Alcotest.(check bool) "median positive" true (Histogram.percentile r.hist 50. > 0)

let test_filebench_personalities () =
  List.iter
    (fun p ->
      let r = Fb.run (winefs ()) ~personality:p ~threads:4 ~files:60 ~ops_per_thread:25 () in
      Alcotest.(check bool) (Fb.name p ^ " ran") true (r.ops = 100 && r.kops_per_s > 0.))
    Fb.all

let test_pgbench () =
  let r = Pg.run (winefs ()) ~threads:4 ~scale_pages:64 ~txns_per_thread:25 () in
  Alcotest.(check int) "txns" 100 r.txns;
  Alcotest.(check bool) "tps" true (r.tps > 0.)

let test_wiredtiger () =
  let h = winefs () in
  let fill = Wt.run h ~mode:`FillRandom ~threads:4 ~keys:0 ~ops_per_thread:50 () in
  Alcotest.(check int) "fill ops" 200 fill.ops;
  let h2 = winefs () in
  let read = Wt.run h2 ~mode:`ReadRandom ~threads:4 ~keys:100 ~ops_per_thread:50 () in
  Alcotest.(check int) "read ops" 200 read.ops

let test_wiredtiger_nova_penalty () =
  (* §5.5: NOVA pays partial-block CoW on unaligned appends. *)
  let run factory =
    let dev = Device.create ~size:(192 * Units.mib) () in
    let h = (factory : Registry.factory).make dev (Types.config ~cpus:4 ~inodes_per_cpu:4096 ()) in
    (Wt.run h ~mode:`FillRandom ~threads:4 ~keys:0 ~ops_per_thread:200 ()).kops_per_s
  in
  let winefs_kops = run Registry.winefs and nova_kops = run Registry.nova in
  Alcotest.(check bool)
    (Printf.sprintf "WineFS %.0f > NOVA %.0f on FillRandom" winefs_kops nova_kops)
    true (winefs_kops > nova_kops)

let test_micro_mmap_vs_syscall () =
  (* §2.1: mmap sequential writes beat syscall writes. *)
  let h = winefs () in
  let io = 16 * Units.mib in
  let m =
    Micro.mmap_rw h ~path:"/m" ~file_bytes:io ~io_bytes:io ~chunk:Units.huge_page
      ~mode:`Seq_write ()
  in
  let s =
    Micro.syscall_rw h ~path:"/s" ~file_bytes:io ~io_bytes:io ~chunk:Units.base_page
      ~fsync_every:1000000 ~mode:`Seq_write ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "mmap %.0f > syscall %.0f MB/s" m.mb_per_s s.mb_per_s)
    true
    (m.mb_per_s > 1.5 *. s.mb_per_s)

let test_scalability_monotone () =
  let make threads () =
    let dev = Device.create ~size:(128 * Units.mib) () in
    Registry.winefs.make dev (Types.config ~cpus:(max 4 threads) ~inodes_per_cpu:2048 ())
  in
  let p1 = Micro.scalability (make 1) ~threads:1 ~files_per_thread:2 ~appends_per_file:8 in
  let p8 = Micro.scalability (make 8) ~threads:8 ~files_per_thread:2 ~appends_per_file:8 in
  Alcotest.(check bool)
    (Printf.sprintf "8 threads (%.0f) > 4x one thread (%.0f)" p8.kops_per_s p1.kops_per_s)
    true
    (p8.kops_per_s > 4. *. p1.kops_per_s)

let test_rsync_xattr_preserves_alignment () =
  (* §3.6: carrying the alignment xattr across an rsync-style copy keeps
     large files hugepage-mappable on an aged receiver. *)
  let module R = Repro_workloads.Rsync_model in
  let module G = Repro_aging.Geriatrix in
  let mk_aged () =
    let dev = Device.create ~size:(256 * Units.mib) () in
    let h = Registry.winefs.make dev (Types.config ~cpus:4 ~inodes_per_cpu:4096 ()) in
    ignore (G.age h ~profile:G.agrawal ~target_util:0.5 ~churn_bytes:(2 * Units.gib) ());
    h
  in
  let copy with_xattrs =
    let src = winefs ~size:(256 * Units.mib) () in
    R.populate src ~seed:5 ~large_files:3 ~small_files:10;
    let r = R.copy_tree ~with_xattrs src (mk_aged ()) in
    (r.huge_mappable_bytes, r.large_file_bytes)
  in
  let with_x, total = copy true in
  let without_x, _ = copy false in
  Alcotest.(check int) "xattr copy fully mappable" total with_x;
  Alcotest.(check bool)
    (Printf.sprintf "no-xattr copy loses hugepages (%d < %d)" without_x with_x)
    true (without_x < with_x)

let suite =
  [
    Alcotest.test_case "rsync xattr preserves alignment" `Slow
      test_rsync_xattr_preserves_alignment;
    Alcotest.test_case "kvstore" `Quick test_kvstore;
    Alcotest.test_case "ycsb mixes" `Quick test_ycsb_mixes;
    Alcotest.test_case "lmdb" `Quick test_lmdb;
    Alcotest.test_case "lmdb fault gap" `Quick test_lmdb_fault_gap;
    Alcotest.test_case "pmemkv" `Quick test_pmemkv;
    Alcotest.test_case "p-art" `Quick test_part;
    Alcotest.test_case "filebench personalities" `Quick test_filebench_personalities;
    Alcotest.test_case "pgbench" `Quick test_pgbench;
    Alcotest.test_case "wiredtiger" `Quick test_wiredtiger;
    Alcotest.test_case "wiredtiger NOVA penalty" `Quick test_wiredtiger_nova_penalty;
    Alcotest.test_case "mmap vs syscall" `Quick test_micro_mmap_vs_syscall;
    Alcotest.test_case "scalability monotone" `Quick test_scalability_monotone;
  ]
