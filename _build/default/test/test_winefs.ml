(* WineFS end-to-end tests: namespace, data path, allocation alignment,
   mount/unmount round trips, hugepage fault policy, reactive rewriting. *)

open Repro_util
module Device = Repro_pmem.Device
module Types = Repro_vfs.Types
module Vmem = Repro_memsim.Vmem
module Fs = Winefs.Fs

let mib = Units.mib

let make_fs ?(size = 64 * mib) ?(cpus = 2) ?(mode = Types.Strict) () =
  let dev = Device.create ~cost:Device.Cost.free ~size () in
  let cfg = Types.config ~cpus ~mode ~inodes_per_cpu:512 () in
  (Fs.format dev cfg, dev, cfg)

let cpu () = Cpu.make ~id:0 ()

let test_create_write_read () =
  let fs, _, _ = make_fs () in
  let c = cpu () in
  let fd = Fs.create fs c "/hello.txt" in
  let n = Fs.pwrite fs c fd ~off:0 ~src:"hello, persistent world" in
  Alcotest.(check int) "write length" 23 n;
  Alcotest.(check string) "read back" "hello, persistent world" (Fs.pread fs c fd ~off:0 ~len:23);
  Alcotest.(check string) "partial read" "persistent" (Fs.pread fs c fd ~off:7 ~len:10);
  Alcotest.(check string) "read past EOF truncated" "world" (Fs.pread fs c fd ~off:18 ~len:100);
  let st = Fs.stat fs c "/hello.txt" in
  Alcotest.(check int) "size" 23 st.st_size;
  Fs.close fs c fd

let test_namespace () =
  let fs, _, _ = make_fs () in
  let c = cpu () in
  Fs.mkdir fs c "/a";
  Fs.mkdir fs c "/a/b";
  let fd = Fs.create fs c "/a/b/f1" in
  Fs.close fs c fd;
  Alcotest.(check (list string)) "readdir /a" [ "b" ] (Fs.readdir fs c "/a");
  Alcotest.(check (list string)) "readdir /a/b" [ "f1" ] (Fs.readdir fs c "/a/b");
  Alcotest.(check bool) "exists" true (Fs.exists fs c "/a/b/f1");
  Alcotest.check_raises "duplicate mkdir" (Types.Error (EEXIST, "b")) (fun () ->
      try Fs.mkdir fs c "/a/b" with Types.Error (e, _) -> raise (Types.Error (e, "b")));
  Fs.rename fs c ~old_path:"/a/b/f1" ~new_path:"/a/f2";
  Alcotest.(check bool) "old gone" false (Fs.exists fs c "/a/b/f1");
  Alcotest.(check bool) "new exists" true (Fs.exists fs c "/a/f2");
  Fs.unlink fs c "/a/f2";
  Alcotest.check_raises "rmdir non-empty" (Types.Error (ENOTEMPTY, "x")) (fun () ->
      try Fs.rmdir fs c "/a" with Types.Error (e, _) -> raise (Types.Error (e, "x")));
  Fs.rmdir fs c "/a/b";
  Alcotest.(check (list string)) "a now empty" [] (Fs.readdir fs c "/a")

let test_unlink_frees_space () =
  let fs, _, _ = make_fs () in
  let c = cpu () in
  (* Warm up the root directory's dentry block so it is not counted. *)
  let fd0 = Fs.create fs c "/warmup" in
  Fs.close fs c fd0;
  Fs.unlink fs c "/warmup";
  let before = (Fs.statfs fs).free in
  let fd = Fs.create fs c "/big" in
  Fs.fallocate fs c fd ~off:0 ~len:(8 * mib);
  Fs.close fs c fd;
  let during = (Fs.statfs fs).free in
  Alcotest.(check bool) "space consumed" true (during <= before - (8 * mib));
  Fs.unlink fs c "/big";
  Alcotest.(check int) "space restored" before (Fs.statfs fs).free

let test_large_write_uses_aligned_extents () =
  let fs, _, _ = make_fs () in
  let c = cpu () in
  let fd = Fs.create fs c "/big" in
  Fs.fallocate fs c fd ~off:0 ~len:(4 * mib);
  let exts = Fs.file_extents fs c "/big" in
  (* Every whole 2MB file chunk must sit on a 2MB-aligned physical run. *)
  List.iter
    (fun (file_off, phys, len) ->
      if Units.is_aligned file_off Units.huge_page && len >= Units.huge_page then
        Alcotest.(check bool) "chunk aligned" true (Units.is_aligned phys Units.huge_page))
    exts;
  Alcotest.(check bool) "few extents for a 4MB file" true (List.length exts <= 3);
  Fs.close fs c fd

let test_small_files_use_holes () =
  let fs, _, _ = make_fs () in
  let c = cpu () in
  let aligned_before = (Fs.statfs fs).aligned_free_2m in
  (* 64 small files must not consume whole aligned extents each. *)
  for i = 1 to 64 do
    let fd = Fs.create fs c (Printf.sprintf "/s%d" i) in
    ignore (Fs.pwrite fs c fd ~off:0 ~src:(String.make 1000 'x'));
    Fs.close fs c fd
  done;
  let aligned_after = (Fs.statfs fs).aligned_free_2m in
  Alcotest.(check bool) "aligned extents preserved" true (aligned_before - aligned_after <= 2)

let test_overwrite_strict_atomic_content () =
  let fs, _, _ = make_fs () in
  let c = cpu () in
  let fd = Fs.create fs c "/f" in
  ignore (Fs.pwrite fs c fd ~off:0 ~src:(String.make 8192 'a'));
  ignore (Fs.pwrite fs c fd ~off:1000 ~src:(String.make 3000 'b'));
  let data = Fs.pread fs c fd ~off:0 ~len:8192 in
  Alcotest.(check char) "head intact" 'a' data.[999];
  Alcotest.(check char) "overwrite applied" 'b' data.[1000];
  Alcotest.(check char) "overwrite end" 'b' data.[3999];
  Alcotest.(check char) "tail intact" 'a' data.[4000];
  Fs.close fs c fd

let test_sparse_and_truncate () =
  let fs, _, _ = make_fs () in
  let c = cpu () in
  let fd = Fs.create fs c "/sparse" in
  Fs.ftruncate fs c fd (10 * mib);
  Alcotest.(check int) "sparse size" (10 * mib) (Fs.file_size fs fd);
  let st = Fs.stat fs c "/sparse" in
  Alcotest.(check int) "no blocks allocated" 0 st.st_blocks;
  ignore (Fs.pwrite fs c fd ~off:(5 * mib) ~src:"data in the middle");
  Alcotest.(check string) "hole reads zeros" (String.make 4 '\000') (Fs.pread fs c fd ~off:100 ~len:4);
  Alcotest.(check string) "middle data" "data in the middle"
    (Fs.pread fs c fd ~off:(5 * mib) ~len:18);
  Fs.ftruncate fs c fd mib;
  Alcotest.(check int) "shrunk" mib (Fs.file_size fs fd);
  let st = Fs.stat fs c "/sparse" in
  Alcotest.(check int) "data beyond truncation freed" 0 st.st_blocks;
  Fs.close fs c fd

let test_unmount_mount_roundtrip () =
  let fs, dev, cfg = make_fs () in
  let c = cpu () in
  Fs.mkdir fs c "/dir";
  let fd = Fs.create fs c "/dir/file" in
  ignore (Fs.pwrite fs c fd ~off:0 ~src:"persist me");
  Fs.close fs c fd;
  Fs.set_xattr_align fs c "/dir/file" true;
  let free_before = (Fs.statfs fs).free in
  Fs.unmount fs c;
  let fs2 = Fs.mount dev cfg in
  Alcotest.(check bool) "file survives" true (Fs.exists fs2 c "/dir/file");
  let fd2 = Fs.openf fs2 c "/dir/file" Types.o_rdonly in
  Alcotest.(check string) "content survives" "persist me" (Fs.pread fs2 c fd2 ~off:0 ~len:10);
  Alcotest.(check int) "free space identical" free_before (Fs.statfs fs2).free;
  Alcotest.(check (list string)) "dir listing" [ "file" ] (Fs.readdir fs2 c "/dir");
  Fs.close fs2 c fd2

let test_mount_without_clean_unmount () =
  let fs, dev, cfg = make_fs () in
  let c = cpu () in
  for i = 1 to 20 do
    let fd = Fs.create fs c (Printf.sprintf "/f%d" i) in
    ignore (Fs.pwrite fs c fd ~off:0 ~src:(String.make (i * 100) 'x'));
    Fs.close fs c fd
  done;
  let free_before = (Fs.statfs fs).free in
  (* No unmount: mount must rebuild allocator state by scanning. *)
  let fs2 = Fs.mount dev cfg in
  Alcotest.(check int) "free space rebuilt by scan" free_before (Fs.statfs fs2).free;
  for i = 1 to 20 do
    Alcotest.(check bool) "file present" true (Fs.exists fs2 c (Printf.sprintf "/f%d" i))
  done;
  Alcotest.(check bool) "recovery time accounted" true (Fs.recovery_ns fs2 > 0)

let test_mmap_hugepage_on_aligned_file () =
  let fs, dev, _ = make_fs () in
  let c = cpu () in
  let fd = Fs.create fs c "/mapped" in
  Fs.fallocate fs c fd ~off:0 ~len:(4 * mib);
  let vm = Vmem.create dev in
  let r = Vmem.mmap vm ~len:(4 * mib) ~backing:(Fs.mmap_backing fs fd) () in
  Vmem.prefault vm c r;
  Alcotest.(check int) "entire file hugepage-mapped" (4 * mib) (Vmem.huge_mapped_bytes vm r);
  Alcotest.(check int) "no base pages" 0 (Vmem.base_mapped_pages vm r);
  (* Data written through the mapping is readable through the FS. *)
  Vmem.write vm c r ~off:mib ~src:"through the mapping";
  Alcotest.(check string) "mmap write visible" "through the mapping"
    (Fs.pread fs c fd ~off:mib ~len:19);
  Fs.close fs c fd

let test_mmap_sparse_file_gets_hugepages () =
  (* The LMDB pattern: ftruncate a sparse file, fault pages on demand.
     WineFS allocates whole aligned extents at fault time. *)
  let fs, dev, _ = make_fs () in
  let c = cpu () in
  let fd = Fs.create fs c "/lmdb" in
  Fs.ftruncate fs c fd (8 * mib);
  let vm = Vmem.create dev in
  let r = Vmem.mmap vm ~len:(8 * mib) ~backing:(Fs.mmap_backing fs fd) () in
  Vmem.write vm c r ~off:0 ~src:(String.make 4096 'k');
  Vmem.write vm c r ~off:(3 * mib) ~src:(String.make 4096 'v');
  Alcotest.(check bool) "sparse faults served by hugepages" true
    (Vmem.huge_mapped_bytes vm r >= 4 * mib);
  Alcotest.(check int) "no base pages" 0 (Vmem.base_mapped_pages vm r);
  Fs.close fs c fd

let test_reactive_rewrite () =
  let fs, dev, _ = make_fs () in
  let c = cpu () in
  (* Build a deliberately fragmented file with many small appends
     interleaved with another file's appends. *)
  let fd1 = Fs.create fs c "/frag" in
  let fd2 = Fs.create fs c "/other" in
  for _ = 1 to 512 do
    ignore (Fs.append fs c fd1 ~src:(String.make 4096 'a'));
    ignore (Fs.append fs c fd2 ~src:(String.make 4096 'b'))
  done;
  (* 2MB of data each, interleaved -> fragmented. *)
  let vm = Vmem.create dev in
  let r = Vmem.mmap vm ~len:(2 * mib) ~backing:(Fs.mmap_backing fs fd1) () in
  Vmem.prefault vm c r;
  let huge_before = Vmem.huge_mapped_bytes vm r in
  Vmem.munmap vm r;
  Fs.close fs c fd1;
  Fs.close fs c fd2;
  let n = Fs.run_rewriter fs c in
  Alcotest.(check bool) "rewriter processed the file" true (n >= 1);
  (* The rewrite swaps in a new inode; re-open by path. *)
  let fd = Fs.openf fs c "/frag" Types.o_rdwr in
  let r2 = Vmem.mmap vm ~len:(2 * mib) ~backing:(Fs.mmap_backing fs fd) () in
  Vmem.prefault vm c r2;
  Alcotest.(check bool) "hugepages after rewrite" true
    (Vmem.huge_mapped_bytes vm r2 > huge_before);
  Alcotest.(check string) "content preserved" (String.make 8 'a') (Fs.pread fs c fd ~off:0 ~len:8);
  Alcotest.(check int) "size preserved" (2 * mib) (Fs.file_size fs fd);
  Fs.close fs c fd

let test_append_mode () =
  let fs, _, _ = make_fs () in
  let c = cpu () in
  let fd = Fs.create fs c "/log" in
  ignore (Fs.append fs c fd ~src:"one ");
  ignore (Fs.append fs c fd ~src:"two ");
  ignore (Fs.append fs c fd ~src:"three");
  Alcotest.(check string) "appended" "one two three" (Fs.pread fs c fd ~off:0 ~len:13);
  Fs.close fs c fd

let test_many_extents_overflow_blocks () =
  (* Force a file to have more extents than fit inline, exercising
     overflow blocks and their mount-time reload. *)
  let fs, dev, cfg = make_fs () in
  let c = cpu () in
  let fd1 = Fs.create fs c "/many" in
  let fd2 = Fs.create fs c "/interleave" in
  for i = 0 to 63 do
    ignore (Fs.pwrite fs c fd1 ~off:(i * 8192) ~src:(String.make 4096 (Char.chr (65 + (i mod 26)))));
    ignore (Fs.append fs c fd2 ~src:(String.make 4096 'x'))
  done;
  let exts = Fs.file_extents fs c "/many" in
  Alcotest.(check bool) "more than inline extents" true
    (List.length exts > Winefs.Layout.inline_extents);
  Fs.close fs c fd1;
  Fs.close fs c fd2;
  Fs.unmount fs c;
  let fs2 = Fs.mount dev cfg in
  let fd = Fs.openf fs2 c "/many" Types.o_rdonly in
  for i = 0 to 63 do
    Alcotest.(check string)
      (Printf.sprintf "chunk %d reloaded" i)
      (String.make 4 (Char.chr (65 + (i mod 26))))
      (Fs.pread fs2 c fd ~off:(i * 8192) ~len:4)
  done;
  Fs.close fs2 c fd

let test_relaxed_mode () =
  let fs, _, _ = make_fs ~mode:Types.Relaxed () in
  let c = cpu () in
  let fd = Fs.create fs c "/f" in
  ignore (Fs.pwrite fs c fd ~off:0 ~src:(String.make 4096 'r'));
  ignore (Fs.pwrite fs c fd ~off:0 ~src:(String.make 4096 's'));
  Fs.fsync fs c fd;
  Alcotest.(check string) "relaxed data readable" (String.make 8 's') (Fs.pread fs c fd ~off:0 ~len:8);
  Fs.close fs c fd

let test_enospc () =
  let fs, _, _ = make_fs ~size:(16 * mib) () in
  let c = cpu () in
  let fd = Fs.create fs c "/huge" in
  Alcotest.(check bool) "fallocate beyond capacity raises ENOSPC" true
    (match Fs.fallocate fs c fd ~off:0 ~len:(64 * mib) with
    | () -> false
    | exception Types.Error (ENOSPC, _) -> true);
  Fs.close fs c fd

let suite =
  [
    Alcotest.test_case "create/write/read" `Quick test_create_write_read;
    Alcotest.test_case "namespace ops" `Quick test_namespace;
    Alcotest.test_case "unlink frees space" `Quick test_unlink_frees_space;
    Alcotest.test_case "large writes use aligned extents" `Quick
      test_large_write_uses_aligned_extents;
    Alcotest.test_case "small files use holes" `Quick test_small_files_use_holes;
    Alcotest.test_case "strict overwrite content" `Quick test_overwrite_strict_atomic_content;
    Alcotest.test_case "sparse files and truncate" `Quick test_sparse_and_truncate;
    Alcotest.test_case "unmount/mount roundtrip" `Quick test_unmount_mount_roundtrip;
    Alcotest.test_case "mount after dirty shutdown" `Quick test_mount_without_clean_unmount;
    Alcotest.test_case "mmap hugepages on aligned file" `Quick test_mmap_hugepage_on_aligned_file;
    Alcotest.test_case "mmap sparse file gets hugepages" `Quick test_mmap_sparse_file_gets_hugepages;
    Alcotest.test_case "reactive rewrite" `Quick test_reactive_rewrite;
    Alcotest.test_case "append mode" `Quick test_append_mode;
    Alcotest.test_case "overflow extent blocks" `Quick test_many_extents_overflow_blocks;
    Alcotest.test_case "relaxed mode" `Quick test_relaxed_mode;
    Alcotest.test_case "ENOSPC" `Quick test_enospc;
  ]
