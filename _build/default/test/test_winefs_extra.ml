(* WineFS deeper behaviours: xattr alignment inheritance, concurrency
   stress under the scheduler, invariants after heavy churn, relaxed-mode
   crash semantics (metadata-only oracle), journal pressure. *)

open Repro_util
module Device = Repro_pmem.Device
module Types = Repro_vfs.Types
module Vmem = Repro_memsim.Vmem
module Sched = Repro_sched.Sched
module Fs = Winefs.Fs

let mib = Units.mib

let make_fs ?(size = 96 * mib) ?(cpus = 4) ?(mode = Types.Strict) () =
  let dev = Device.create ~cost:Device.Cost.free ~size () in
  (Fs.format dev (Types.config ~cpus ~mode ~inodes_per_cpu:1024 ()), dev)

let cpu () = Cpu.make ~id:0 ()

let test_xattr_align_small_file () =
  (* §3.6: a file carrying the alignment xattr starts on an aligned
     extent even when written with small requests (the rsync/cp story). *)
  let fs, _ = make_fs () in
  let c = cpu () in
  Fs.mkdir fs c "/dst";
  Fs.set_xattr_align fs c "/dst" true;
  (* Children inherit the directory-level xattr. *)
  let fd = Fs.create fs c "/dst/copied" in
  ignore (Fs.pwrite fs c fd ~off:0 ~src:(String.make 50_000 'r'));
  (match Fs.file_extents fs c "/dst/copied" with
  | (_, phys, _) :: _ ->
      Alcotest.(check bool) "starts 2MB-aligned" true (Units.is_aligned phys Units.huge_page)
  | [] -> Alcotest.fail "no extents");
  Fs.close fs c fd;
  (* Without the xattr, an identical small file starts in a hole. *)
  let fd2 = Fs.create fs c "/plain" in
  ignore (Fs.pwrite fs c fd2 ~off:0 ~src:(String.make 50_000 'r'));
  (match Fs.file_extents fs c "/plain" with
  | (_, phys, _) :: _ ->
      Alcotest.(check bool) "hole-backed (not a fresh aligned extent)" true
        (not (Units.is_aligned phys Units.huge_page))
  | [] -> Alcotest.fail "no extents");
  Fs.close fs c fd2

let test_xattr_survives_remount () =
  let fs, dev = make_fs () in
  let c = cpu () in
  let fd = Fs.create fs c "/marked" in
  Fs.close fs c fd;
  Fs.set_xattr_align fs c "/marked" true;
  Fs.unmount fs c;
  let fs2 = Fs.mount dev (Types.config ()) in
  (* The xattr lives in the inode header: writing after remount must
     still prefer aligned extents. *)
  let fd2 = Fs.openf fs2 c "/marked" Types.o_rdwr in
  ignore (Fs.pwrite fs2 c fd2 ~off:0 ~src:(String.make 10_000 'x'));
  (match Fs.file_extents fs2 c "/marked" with
  | (_, phys, _) :: _ ->
      Alcotest.(check bool) "aligned after remount" true
        (Units.is_aligned phys Units.huge_page)
  | [] -> Alcotest.fail "no extents");
  Fs.close fs2 c fd2

let test_concurrent_stress () =
  (* Many threads churning the same tree: no exceptions, consistent
     accounting, and a remountable image at the end. *)
  let dev = Device.create ~cost:Device.Cost.free ~size:(96 * mib) () in
  let cfg = Types.config ~cpus:8 ~inodes_per_cpu:1024 () in
  let fs = Fs.format dev cfg in
  let setup = cpu () in
  for d = 0 to 7 do
    Fs.mkdir fs setup (Printf.sprintf "/d%d" d)
  done;
  let _ =
    Sched.run ~threads:8 (fun c ->
        let rng = Rng.create (c.Cpu.id + 1) in
        for i = 0 to 60 do
          let path = Printf.sprintf "/d%d/f%d-%d" (Rng.int rng 8) c.Cpu.id i in
          match Fs.create fs c path with
          | fd ->
              ignore (Fs.pwrite fs c fd ~off:0 ~src:(String.make (1 + Rng.int rng 20000) 'w'));
              Fs.fsync fs c fd;
              Fs.close fs c fd;
              if Rng.bool rng then ( try Fs.unlink fs c path with Types.Error _ -> ())
          | exception Types.Error _ -> ()
        done)
  in
  let s = Fs.statfs fs in
  Alcotest.(check bool) "accounting holds" true (s.free + s.used = s.capacity);
  Fs.unmount fs setup;
  let fs2 = Fs.mount dev cfg in
  let s2 = Fs.statfs fs2 in
  Alcotest.(check int) "remount agrees on free space" s.free s2.free

let test_rename_cycles_and_depth () =
  let fs, _ = make_fs () in
  let c = cpu () in
  (* Deep tree. *)
  let rec deep base n = if n = 0 then base else deep (base ^ "/s") (n - 1) in
  let rec mk base n =
    if n > 0 then begin
      Fs.mkdir fs c (base ^ "/s");
      mk (base ^ "/s") (n - 1)
    end
  in
  Fs.mkdir fs c "/deep";
  mk "/deep" 10;
  let bottom = deep "/deep" 10 in
  let fd = Fs.create fs c (bottom ^ "/leaf") in
  ignore (Fs.pwrite fs c fd ~off:0 ~src:"down under");
  Fs.close fs c fd;
  Alcotest.(check bool) "deep path resolves" true (Fs.exists fs c (bottom ^ "/leaf"));
  (* Rename a directory across levels: children must keep resolving. *)
  Fs.rename fs c ~old_path:("/deep/s") ~new_path:"/moved";
  Alcotest.(check bool) "moved subtree resolves" true
    (Fs.exists fs c (deep "/moved" 9 ^ "/leaf"))

let test_journal_pressure_many_ops () =
  (* Thousands of metadata ops on one CPU: the journal ring must wrap and
     reclaim without corruption, and the image must remount. *)
  let fs, dev = make_fs ~cpus:1 () in
  let c = cpu () in
  for i = 0 to 2000 do
    let p = Printf.sprintf "/t%d" (i mod 50) in
    if Fs.exists fs c p then Fs.unlink fs c p
    else begin
      let fd = Fs.create fs c p in
      ignore (Fs.pwrite fs c fd ~off:0 ~src:"spin");
      Fs.close fs c fd
    end
  done;
  let fs2 = Fs.mount dev (Types.config ()) in
  Alcotest.(check bool) "remounts after journal churn" true (Fs.recovery_ns fs2 >= 0)

let test_relaxed_crash_metadata_consistent () =
  (* Relaxed mode: metadata operations are still atomic+synchronous.
     Run a rename under crash injection and check the namespace (sizes and
     names; not data) with the metadata-only oracle. *)
  let r =
    Repro_crashcheck.Checker.run ~mode:Types.Relaxed
      ~workloads:
        (List.filter
           (fun (w : Repro_crashcheck.Ace.workload) ->
             List.mem w.w_name [ "seq1-rename-replace"; "seq1-mkdir"; "seq1-unlink" ])
           Repro_crashcheck.Ace.all)
      ()
  in
  Alcotest.(check (list (pair string string))) "relaxed metadata atomic" [] r.failures

let test_mount_rejects_garbage () =
  let dev = Device.create ~cost:Device.Cost.free ~size:(32 * mib) () in
  Alcotest.(check bool) "garbage image rejected" true
    (match Fs.mount dev (Types.config ()) with
    | _ -> false
    | exception Types.Error (EINVAL, _) -> true)

let test_statfs_capacity_constant () =
  let fs, _ = make_fs () in
  let c = cpu () in
  let cap0 = (Fs.statfs fs).capacity in
  for i = 0 to 20 do
    let fd = Fs.create fs c (Printf.sprintf "/c%d" i) in
    ignore (Fs.pwrite fs c fd ~off:0 ~src:(String.make 100_000 'c'));
    Fs.close fs c fd
  done;
  Alcotest.(check int) "capacity constant" cap0 (Fs.statfs fs).capacity

let test_sparse_mmap_read_zeroes () =
  (* Reading an unfaulted hole through a mapping must see zeros (fault
     allocates + zeroes). *)
  let fs, dev = make_fs () in
  let c = cpu () in
  let fd = Fs.create fs c "/sparse" in
  Fs.ftruncate fs c fd (4 * mib);
  let vm = Vmem.create dev in
  let r = Vmem.mmap vm ~len:(4 * mib) ~backing:(Fs.mmap_backing fs fd) () in
  let buf = Bytes.make 16 'x' in
  Vmem.read_into vm c r ~off:(3 * mib) ~dst:buf ~dst_off:0 ~len:16;
  Alcotest.(check string) "hole reads zero" (String.make 16 '\000') (Bytes.to_string buf);
  Fs.close fs c fd

let suite =
  [
    Alcotest.test_case "xattr alignment for small files" `Quick test_xattr_align_small_file;
    Alcotest.test_case "xattr survives remount" `Quick test_xattr_survives_remount;
    Alcotest.test_case "concurrent stress" `Quick test_concurrent_stress;
    Alcotest.test_case "deep trees and subtree rename" `Quick test_rename_cycles_and_depth;
    Alcotest.test_case "journal pressure" `Quick test_journal_pressure_many_ops;
    Alcotest.test_case "relaxed crash metadata-consistent" `Quick
      test_relaxed_crash_metadata_consistent;
    Alcotest.test_case "mount rejects garbage" `Quick test_mount_rejects_garbage;
    Alcotest.test_case "statfs capacity constant" `Quick test_statfs_capacity_constant;
    Alcotest.test_case "sparse mmap reads zeroes" `Quick test_sparse_mmap_read_zeroes;
  ]
