(* Red-black tree and extent tree: unit tests plus properties checked
   against the stdlib Map as a model. *)

module RB = Repro_rbtree.Rbtree.Int_map
module ET = Repro_rbtree.Extent_tree
module IM = Map.Make (Int)

let test_basic () =
  let t = RB.create () in
  Alcotest.(check bool) "empty" true (RB.is_empty t);
  RB.insert t 5 "five";
  RB.insert t 1 "one";
  RB.insert t 9 "nine";
  Alcotest.(check int) "size" 3 (RB.size t);
  Alcotest.(check (option string)) "find" (Some "five") (RB.find t 5);
  Alcotest.(check (option string)) "missing" None (RB.find t 7);
  RB.insert t 5 "FIVE";
  Alcotest.(check int) "replace keeps size" 3 (RB.size t);
  Alcotest.(check (option string)) "replaced" (Some "FIVE") (RB.find t 5);
  RB.remove t 5;
  Alcotest.(check int) "removed" 2 (RB.size t);
  RB.remove t 42 (* absent: no-op *);
  Alcotest.(check int) "remove absent" 2 (RB.size t);
  Alcotest.(check (list (pair int string))) "ordered" [ (1, "one"); (9, "nine") ] (RB.to_list t)

let test_neighbours () =
  let t = RB.create () in
  List.iter (fun k -> RB.insert t k k) [ 10; 20; 30; 40 ];
  Alcotest.(check (option (pair int int))) "geq exact" (Some (20, 20)) (RB.find_first_geq t 20);
  Alcotest.(check (option (pair int int))) "geq between" (Some (30, 30)) (RB.find_first_geq t 21);
  Alcotest.(check (option (pair int int))) "geq past end" None (RB.find_first_geq t 41);
  Alcotest.(check (option (pair int int))) "leq exact" (Some (20, 20)) (RB.find_last_leq t 20);
  Alcotest.(check (option (pair int int))) "leq between" (Some (20, 20)) (RB.find_last_leq t 29);
  Alcotest.(check (option (pair int int))) "leq before start" None (RB.find_last_leq t 9);
  Alcotest.(check (option (pair int int))) "min" (Some (10, 10)) (RB.min_binding t);
  Alcotest.(check (option (pair int int))) "max" (Some (40, 40)) (RB.max_binding t)

(* Model-based property: random insert/remove sequences agree with Map and
   preserve red-black invariants. *)
let prop_model =
  QCheck.Test.make ~name:"rbtree agrees with Map and keeps invariants" ~count:200
    QCheck.(list (pair (int_bound 500) bool))
    (fun ops ->
      let t = RB.create () in
      let model = ref IM.empty in
      List.iter
        (fun (k, insert) ->
          if insert then begin
            RB.insert t k (k * 2);
            model := IM.add k (k * 2) !model
          end
          else begin
            RB.remove t k;
            model := IM.remove k !model
          end)
        ops;
      (match RB.check_invariants t with
      | Ok () -> ()
      | Error m -> QCheck.Test.fail_reportf "invariant: %s" m);
      RB.to_list t = IM.bindings !model)

let prop_successor =
  QCheck.Test.make ~name:"find_first_geq matches Map.find_first" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 100) (int_bound 1000)) (int_bound 1000))
    (fun (keys, probe) ->
      let t = RB.create () in
      let model = List.fold_left (fun m k -> IM.add k k m) IM.empty keys in
      List.iter (fun k -> RB.insert t k k) keys;
      let expect = IM.find_first_opt (fun k -> k >= probe) model in
      RB.find_first_geq t probe = expect)

(* --- extent tree --- *)

let mib = Repro_util.Units.mib

let test_extent_coalesce () =
  let t = ET.create () in
  ET.insert_free t ~off:0 ~len:4096;
  ET.insert_free t ~off:8192 ~len:4096;
  Alcotest.(check int) "two extents" 2 (ET.extent_count t);
  ET.insert_free t ~off:4096 ~len:4096;
  Alcotest.(check int) "merged into one" 1 (ET.extent_count t);
  Alcotest.(check int) "total" 12288 (ET.total_free t);
  Alcotest.(check (list (pair int int))) "span" [ (0, 12288) ] (ET.to_list t)

let test_extent_double_free () =
  let t = ET.create () in
  ET.insert_free t ~off:0 ~len:8192;
  Alcotest.(check bool) "overlap rejected" true
    (match ET.insert_free t ~off:4096 ~len:4096 with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_extent_alloc_modes () =
  let t = ET.create () in
  ET.insert_free t ~off:0 ~len:(1 * mib);
  ET.insert_free t ~off:(4 * mib) ~len:(8 * mib);
  (* first fit takes the low extent *)
  Alcotest.(check (option int)) "first fit" (Some 0) (ET.alloc_first_fit t ~len:4096);
  (* best fit takes the smallest sufficient *)
  Alcotest.(check (option int)) "best fit small" (Some 4096)
    (ET.alloc_best_fit t ~len:(mib - 4096));
  (* exact carve *)
  Alcotest.(check bool) "exact" true (ET.alloc_exact t ~off:(5 * mib) ~len:mib);
  Alcotest.(check bool) "exact taken" false (ET.alloc_exact t ~off:(5 * mib) ~len:mib);
  (* aligned carve *)
  let huge = Repro_util.Units.huge_page in
  (match ET.alloc_aligned t ~len:huge ~align:huge with
  | Some off -> Alcotest.(check bool) "aligned result" true (off mod huge = 0)
  | None -> Alcotest.fail "aligned alloc failed");
  match ET.check_invariants t with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invariants: %s" m

let test_aligned_census () =
  let t = ET.create () in
  let huge = Repro_util.Units.huge_page in
  ET.insert_free t ~off:0 ~len:(3 * huge) (* 3 aligned regions *);
  ET.insert_free t ~off:(4 * huge) ~len:(huge + 4096) (* 1 aligned region + slack *);
  ET.insert_free t ~off:(7 * huge) ~len:(huge - 4096) (* too small: 0 *);
  Alcotest.(check int) "census" 4 (ET.aligned_region_count t ~align:huge)

let test_alloc_near () =
  let t = ET.create () in
  ET.insert_free t ~off:0 ~len:mib;
  ET.insert_free t ~off:(4 * mib) ~len:mib;
  Alcotest.(check (option int)) "near goal" (Some (4 * mib))
    (ET.alloc_near t ~goal:(3 * mib) ~len:4096);
  Alcotest.(check (option int)) "wraps when nothing after goal"
    (Some 0)
    (ET.alloc_near t ~goal:(100 * mib) ~len:mib)

(* Property: arbitrary alloc/free churn preserves invariants and accounting. *)
let prop_extent_churn =
  QCheck.Test.make ~name:"extent tree churn preserves invariants" ~count:100
    QCheck.(list (pair (int_bound 3) (int_range 1 32)))
    (fun ops ->
      let t = ET.create () in
      ET.insert_free t ~off:0 ~len:(256 * 4096);
      let held = ref [] in
      List.iter
        (fun (op, blocks) ->
          let len = blocks * 4096 in
          match op with
          | 0 -> (
              match ET.alloc_first_fit t ~len with
              | Some off -> held := (off, len) :: !held
              | None -> ())
          | 1 -> (
              match ET.alloc_best_fit t ~len with
              | Some off -> held := (off, len) :: !held
              | None -> ())
          | _ -> (
              match !held with
              | (off, len) :: rest ->
                  ET.insert_free t ~off ~len;
                  held := rest
              | [] -> ()))
        ops;
      let held_bytes = List.fold_left (fun a (_, l) -> a + l) 0 !held in
      (match ET.check_invariants t with
      | Ok () -> ()
      | Error m -> QCheck.Test.fail_reportf "invariant: %s" m);
      ET.total_free t + held_bytes = 256 * 4096)

let suite =
  [
    Alcotest.test_case "rbtree basics" `Quick test_basic;
    Alcotest.test_case "rbtree neighbours" `Quick test_neighbours;
    QCheck_alcotest.to_alcotest prop_model;
    QCheck_alcotest.to_alcotest prop_successor;
    Alcotest.test_case "extent coalescing" `Quick test_extent_coalesce;
    Alcotest.test_case "extent double free" `Quick test_extent_double_free;
    Alcotest.test_case "extent alloc modes" `Quick test_extent_alloc_modes;
    Alcotest.test_case "aligned census" `Quick test_aligned_census;
    Alcotest.test_case "alloc near goal" `Quick test_alloc_near;
    QCheck_alcotest.to_alcotest prop_extent_churn;
  ]
