(* Model-based testing: random operation sequences applied both to WineFS
   and to a trivial in-memory reference; every read, size, listing and
   existence query must agree, including across remounts.  This is the
   broadest correctness net over the whole FS stack. *)

open Repro_util
module Device = Repro_pmem.Device
module Types = Repro_vfs.Types
module Fs = Winefs.Fs

(* The reference: a map from path to content, plus a directory set. *)
module Model = struct
  module M = Map.Make (String)

  type t = { mutable files : string M.t; mutable dirs : string list }

  let create () = { files = M.empty; dirs = [ "/" ] }

  let parent p = Repro_vfs.Path.dirname p

  let dir_exists t d = List.mem d t.dirs

  let write t path ~off ~data =
    match M.find_opt path t.files with
    | None -> ()
    | Some old ->
        let len = max (String.length old) (off + String.length data) in
        let b = Bytes.make len '\000' in
        Bytes.blit_string old 0 b 0 (String.length old);
        Bytes.blit_string data 0 b off (String.length data);
        t.files <- M.add path (Bytes.to_string b) t.files

  let truncate t path n =
    match M.find_opt path t.files with
    | None -> ()
    | Some old ->
        let b = Bytes.make n '\000' in
        Bytes.blit_string old 0 b 0 (min n (String.length old));
        t.files <- M.add path (Bytes.to_string b) t.files
end

type op =
  | Create of string
  | Write of string * int * string
  | Append of string * string
  | Unlink of string
  | Truncate of string * int
  | Rename of string * string
  | Remount

let gen_ops rng n =
  let file i = Printf.sprintf "/d%d/f%d" (i mod 3) (i mod 7) in
  List.init n (fun _ ->
      let f = file (Rng.int rng 21) in
      match Rng.int rng 16 with
      | 0 | 1 | 2 | 3 -> Create f
      | 4 | 5 | 6 ->
          Write (f, Rng.int rng 5000, String.make (1 + Rng.int rng 3000) (Char.chr (97 + Rng.int rng 26)))
      | 7 | 8 | 9 -> Append (f, String.make (1 + Rng.int rng 2000) (Char.chr (65 + Rng.int rng 26)))
      | 10 | 11 -> Unlink f
      | 12 -> Truncate (f, Rng.int rng 6000)
      | 13 | 14 -> Rename (f, file (Rng.int rng 21))
      | _ -> Remount)

let apply_fs fs_ref dev cfg cpu op =
  let fs = !fs_ref in
  match op with
  | Create p -> (
      match Fs.create fs cpu p with
      | fd -> Fs.close fs cpu fd
      | exception Types.Error _ -> ())
  | Write (p, off, data) -> (
      try
        let fd = Fs.openf fs cpu p Types.o_rdwr in
        ignore (Fs.pwrite fs cpu fd ~off ~src:data);
        Fs.close fs cpu fd
      with Types.Error _ -> ())
  | Append (p, data) -> (
      try
        let fd = Fs.openf fs cpu p Types.o_rdwr in
        ignore (Fs.append fs cpu fd ~src:data);
        Fs.close fs cpu fd
      with Types.Error _ -> ())
  | Unlink p -> ( try Fs.unlink fs cpu p with Types.Error _ -> ())
  | Truncate (p, n) -> (
      try
        let fd = Fs.openf fs cpu p Types.o_rdwr in
        Fs.ftruncate fs cpu fd n;
        Fs.close fs cpu fd
      with Types.Error _ -> ())
  | Rename (a, b) -> (
      try Fs.rename fs cpu ~old_path:a ~new_path:b with Types.Error _ -> ())
  | Remount ->
      Fs.unmount fs cpu;
      fs_ref := Fs.mount dev cfg

let apply_model (m : Model.t) op =
  let module M = Model.M in
  match op with
  | Create p ->
      if Model.dir_exists m (Model.parent p) && not (M.mem p m.files) then
        m.files <- M.add p "" m.files
  | Write (p, off, data) -> Model.write m p ~off ~data
  | Append (p, data) -> (
      match M.find_opt p m.files with
      | Some old -> Model.write m p ~off:(String.length old) ~data
      | None -> ())
  | Unlink p -> m.files <- M.remove p m.files
  | Truncate (p, n) -> Model.truncate m p n
  | Rename (a, b) -> (
      match M.find_opt a m.files with
      | Some content when Model.dir_exists m (Model.parent b) && a <> b ->
          (* Renaming over an existing directory entry replaces files
             only; directories are never sources here. *)
          m.files <- M.add b content (M.remove a m.files)
      | _ -> ())
  | Remount -> ()

let check_agreement fs cpu (m : Model.t) =
  let module M = Model.M in
  M.iter
    (fun path content ->
      if not (Fs.exists fs cpu path) then Alcotest.failf "model has %s, fs does not" path;
      let fd = Fs.openf fs cpu path Types.o_rdonly in
      let size = Fs.file_size fs fd in
      if size <> String.length content then
        Alcotest.failf "%s: size %d vs model %d" path size (String.length content);
      let data = Fs.pread fs cpu fd ~off:0 ~len:size in
      Fs.close fs cpu fd;
      if data <> content then Alcotest.failf "%s: content mismatch" path)
    m.files;
  (* And nothing extra: walk the fs tree counting regular files. *)
  let count = ref 0 in
  let rec walk dir =
    List.iter
      (fun name ->
        let child = Repro_vfs.Path.concat dir name in
        match (Fs.stat fs cpu child).st_kind with
        | Types.Directory -> walk child
        | Types.Regular -> incr count)
      (Fs.readdir fs cpu dir)
  in
  walk "/";
  if !count <> M.cardinal m.files then
    Alcotest.failf "fs has %d files, model %d" !count (M.cardinal m.files)

let run_case seed ops_count () =
  let dev = Device.create ~cost:Device.Cost.free ~size:(96 * Units.mib) () in
  let cfg = Types.config ~cpus:2 ~inodes_per_cpu:512 () in
  let fs = ref (Fs.format dev cfg) in
  let cpu = Cpu.make ~id:0 () in
  for d = 0 to 2 do
    Fs.mkdir !fs cpu (Printf.sprintf "/d%d" d)
  done;
  let m = Model.create () in
  m.dirs <- [ "/"; "/d0"; "/d1"; "/d2" ];
  let rng = Rng.create seed in
  List.iter
    (fun op ->
      apply_fs fs dev cfg cpu op;
      apply_model m op)
    (gen_ops rng ops_count);
  check_agreement !fs cpu m;
  (* Final remount must also agree. *)
  Fs.unmount !fs cpu;
  check_agreement (Fs.mount dev cfg) cpu m

let suite =
  List.map
    (fun seed ->
      Alcotest.test_case (Printf.sprintf "random ops vs model (seed %d)" seed) `Quick
        (run_case seed 300))
    [ 1; 2; 3; 4; 5; 6 ]
