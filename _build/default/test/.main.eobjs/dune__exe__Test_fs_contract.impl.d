test/test_fs_contract.ml: Alcotest Cpu List Repro_baselines Repro_memsim Repro_pmem Repro_util Repro_vfs String Units
