test/test_journal.ml: Alcotest Cpu Gen List QCheck QCheck_alcotest Repro_journal Repro_pmem Repro_util String Units
