test/test_vfs.ml: Alcotest Array Bytes Cpu List Printf QCheck QCheck_alcotest Repro_util Repro_vfs Units Winefs
