test/test_experiments.ml: Alcotest List Printf Repro_experiments Repro_util String
