test/main.mli:
