test/test_winefs_extra.ml: Alcotest Bytes Cpu List Printf Repro_crashcheck Repro_memsim Repro_pmem Repro_sched Repro_util Repro_vfs Rng String Units Winefs
