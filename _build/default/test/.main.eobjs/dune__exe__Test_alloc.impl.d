test/test_alloc.ml: Alcotest Array List QCheck QCheck_alcotest Repro_alloc Repro_util Units
