test/test_pmem.ml: Alcotest Counters Cpu Filename List Repro_pmem Repro_util String Sys Units
