test/test_aging.ml: Alcotest Cpu Printf Repro_aging Repro_baselines Repro_pmem Repro_util Repro_vfs Units
