test/test_rbtree.ml: Alcotest Gen Int List Map QCheck QCheck_alcotest Repro_rbtree Repro_util
