test/test_model_fs.ml: Alcotest Bytes Char Cpu List Map Printf Repro_pmem Repro_util Repro_vfs Rng String Units Winefs
