test/test_memsim.ml: Alcotest Bytes Char Counters Cpu Gen List Printf QCheck QCheck_alcotest Repro_memsim Repro_pmem Repro_util Rng String Units
