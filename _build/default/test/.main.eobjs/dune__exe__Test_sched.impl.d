test/test_sched.ml: Alcotest Array Buffer Cpu Repro_sched Repro_util Simclock
