test/test_crashcheck.ml: Alcotest List Repro_crashcheck Repro_pmem Repro_util Repro_vfs Winefs
