test/test_util.ml: Alcotest Array Counters Cpu Dist Fun Gen Histogram List Printf QCheck QCheck_alcotest Repro_util Rng Simclock String Table Units
