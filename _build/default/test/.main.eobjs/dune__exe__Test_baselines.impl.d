test/test_baselines.ml: Alcotest Counters Cpu Printf Repro_baselines Repro_memsim Repro_pmem Repro_util Repro_vfs String Units
