test/test_winefs.ml: Alcotest Char Cpu List Printf Repro_memsim Repro_pmem Repro_util Repro_vfs String Units Winefs
