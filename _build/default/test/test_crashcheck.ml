(* Crash-consistency machinery: the checker must pass on correct WineFS,
   catch injected corruption, and the recovery-time probe must scale with
   file count. *)

module Checker = Repro_crashcheck.Checker
module Ace = Repro_crashcheck.Ace

let pick names =
  List.filter (fun (w : Ace.workload) -> List.mem w.w_name names) Ace.all

let test_seq1_sample () =
  let r =
    Checker.run
      ~workloads:(pick [ "seq1-create"; "seq1-rename-replace"; "seq1-unlink"; "seq1-append" ])
      ()
  in
  Alcotest.(check int) "workloads" 4 r.workloads_run;
  Alcotest.(check bool) "explored crash points" true (r.crash_points > 10);
  Alcotest.(check bool) "explored states" true (r.states_checked > r.crash_points);
  Alcotest.(check (list (pair string string))) "no inconsistencies" [] r.failures

let test_seq2_sample () =
  let r = Checker.run ~workloads:(pick [ "seq2-create-write"; "seq2-rename-rename" ]) () in
  Alcotest.(check (list (pair string string))) "no inconsistencies" [] r.failures

let test_seq3_sample () =
  let r = Checker.run ~workloads:(pick [ "seq3-replace-via-tmp" ]) () in
  Alcotest.(check (list (pair string string))) "no inconsistencies" [] r.failures

(* The oracle itself must distinguish different trees and contents. *)
let test_signature_sensitivity () =
  let module Device = Repro_pmem.Device in
  let module Types = Repro_vfs.Types in
  let module Fs = Winefs.Fs in
  let c = Repro_util.Cpu.make ~id:0 () in
  let mk () =
    let dev = Device.create ~cost:Device.Cost.free ~size:(48 * Repro_util.Units.mib) () in
    Fs.format dev (Types.config ~cpus:2 ~inodes_per_cpu:256 ())
  in
  let h fs = Repro_vfs.Fs_intf.Handle ((module Fs : Repro_vfs.Fs_intf.S with type t = Fs.t), fs) in
  let fs1 = mk () and fs2 = mk () in
  Alcotest.(check string) "empty trees equal"
    (Checker.signature_of (h fs1) c)
    (Checker.signature_of (h fs2) c);
  let fd = Fs.create fs1 c "/x" in
  ignore (Fs.pwrite fs1 c fd ~off:0 ~src:"abc");
  Fs.close fs1 c fd;
  Alcotest.(check bool) "file changes signature" true
    (Checker.signature_of (h fs1) c <> Checker.signature_of (h fs2) c);
  let fd2 = Fs.create fs2 c "/x" in
  ignore (Fs.pwrite fs2 c fd2 ~off:0 ~src:"abd");
  Fs.close fs2 c fd2;
  Alcotest.(check bool) "content changes signature" true
    (Checker.signature_of (h fs1) c <> Checker.signature_of (h fs2) c)

let test_recovery_time_scales () =
  let t1, _ = Checker.recovery_time ~files:100 ~file_bytes:8192 in
  let t2, _ = Checker.recovery_time ~files:1000 ~file_bytes:8192 in
  Alcotest.(check bool) "recovery grows with files" true (t2 > t1);
  (* §5.2: recovery depends on file count, not data volume. *)
  let t3, _ = Checker.recovery_time ~files:100 ~file_bytes:65536 in
  Alcotest.(check bool) "8x data is far cheaper than 10x files" true (t3 < t2)

let suite =
  [
    Alcotest.test_case "seq1 sample consistent" `Quick test_seq1_sample;
    Alcotest.test_case "seq2 sample consistent" `Quick test_seq2_sample;
    Alcotest.test_case "seq3 sample consistent" `Quick test_seq3_sample;
    Alcotest.test_case "signature sensitivity" `Quick test_signature_sensitivity;
    Alcotest.test_case "recovery time scales with files" `Quick test_recovery_time_scales;
  ]
