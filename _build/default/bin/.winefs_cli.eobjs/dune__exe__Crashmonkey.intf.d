bin/crashmonkey.mli:
