bin/agectl.ml: Arg Cmd Cmdliner Printf Repro_aging Repro_baselines Repro_pmem Repro_util Repro_vfs Term Units Unix
