bin/winefs_cli.mli:
