bin/agectl.mli:
