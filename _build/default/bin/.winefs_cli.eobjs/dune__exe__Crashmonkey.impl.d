bin/crashmonkey.ml: Arg Cmd Cmdliner List Printf Repro_crashcheck Term
