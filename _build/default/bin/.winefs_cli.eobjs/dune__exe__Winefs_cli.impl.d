bin/winefs_cli.ml: Arg Cmd Cmdliner Cpu List Printf Repro_pmem Repro_util Repro_vfs Term Units Winefs
