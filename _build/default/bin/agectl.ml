(* agectl — age a file system with the Geriatrix-style ager and print the
   fragmentation census (the Figure 3 measurement as a command).

   Examples:
     agectl --fs WineFS --util 0.7
     agectl --fs NOVA --util 0.9 --churn-gib 24 --profile wang-hpc --size-mib 1024 *)

open Cmdliner
open Repro_util
module Device = Repro_pmem.Device
module Types = Repro_vfs.Types
module Registry = Repro_baselines.Registry
module G = Repro_aging.Geriatrix

let run fs_name util churn_gib size_mib profile_name seed =
  let factory = Registry.by_name fs_name in
  let profile =
    match profile_name with
    | "agrawal" -> G.agrawal
    | "wang-hpc" -> G.wang_hpc
    | p ->
        Printf.eprintf "unknown profile %S (agrawal | wang-hpc)\n" p;
        exit 2
  in
  let dev = Device.create ~size:(size_mib * Units.mib) () in
  let h = factory.make dev (Types.config ~cpus:4 ~inodes_per_cpu:16384 ()) in
  let t0 = Unix.gettimeofday () in
  let r =
    G.age h ~seed ~profile ~target_util:util ~churn_bytes:(churn_gib * Units.gib) ()
  in
  Printf.printf "file system     : %s\n" factory.fs_name;
  Printf.printf "profile         : %s\n" profile.profile_name;
  Printf.printf "device          : %d MiB\n" size_mib;
  Printf.printf "churn           : %d GiB written (%d files created, %d deleted)\n"
    churn_gib r.files_created r.files_deleted;
  Printf.printf "utilization     : %.1f%% (%d files live)\n" (100. *. r.utilization) r.live_files;
  Printf.printf "aligned 2MB free: %d extents\n" r.aligned_free_2m;
  Printf.printf "frag ratio      : %.1f%% of free space is hugepage-capable\n"
    (100. *. r.free_frag_ratio);
  Printf.printf "(wall time %.1fs)\n" (Unix.gettimeofday () -. t0);
  0

let () =
  let fs = Arg.(value & opt string "WineFS" & info [ "fs" ] ~doc:"File system (see registry)") in
  let util = Arg.(value & opt float 0.7 & info [ "util" ] ~doc:"Target utilization (0..1)") in
  let churn = Arg.(value & opt int 8 & info [ "churn-gib" ] ~doc:"Churn volume in GiB") in
  let size = Arg.(value & opt int 384 & info [ "size-mib" ] ~doc:"Device size in MiB") in
  let profile = Arg.(value & opt string "agrawal" & info [ "profile" ] ~doc:"agrawal | wang-hpc") in
  let seed = Arg.(value & opt int 0xA6E & info [ "seed" ] ~doc:"Ager RNG seed") in
  let cmd =
    Cmd.v (Cmd.info "agectl" ~doc:"Age a simulated PM file system and report fragmentation")
      Term.(const run $ fs $ util $ churn $ size $ profile $ seed)
  in
  exit (Cmd.eval' cmd)
