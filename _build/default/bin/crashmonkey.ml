(* crashmonkey — run the ACE/CrashMonkey-style crash-consistency campaign
   against WineFS (§5.2).

   Examples:
     crashmonkey                 # every workload, strict mode
     crashmonkey --seq 2         # only two-op sequences
     crashmonkey --verbose       # list each workload *)

open Cmdliner
module Checker = Repro_crashcheck.Checker
module Ace = Repro_crashcheck.Ace

let run seq verbose =
  let workloads =
    match seq with
    | 0 -> Ace.all
    | 1 -> Ace.seq1
    | 2 -> Ace.seq2
    | 3 -> Ace.seq3
    | n ->
        Printf.eprintf "--seq must be 1, 2, 3, or 0 for all (got %d)\n" n;
        exit 2
  in
  Printf.printf "Running %d ACE workloads against WineFS (strict mode)...\n%!"
    (List.length workloads);
  let total_points = ref 0 and total_states = ref 0 and failed = ref 0 in
  List.iter
    (fun (w : Ace.workload) ->
      let r = Checker.run ~workloads:[ w ] () in
      total_points := !total_points + r.crash_points;
      total_states := !total_states + r.states_checked;
      failed := !failed + List.length r.failures;
      if verbose || r.failures <> [] then begin
        Printf.printf "  %-28s %4d crash points %6d states %s\n%!" w.w_name r.crash_points
          r.states_checked
          (if r.failures = [] then "ok" else "FAILED");
        List.iter (fun (_, d) -> Printf.printf "      %s\n" d) r.failures
      end)
    workloads;
  Printf.printf
    "\ncampaign: %d workloads, %d crash points, %d crash states, %d inconsistencies\n"
    (List.length workloads) !total_points !total_states !failed;
  if !failed = 0 then begin
    print_endline "WineFS recovered to a consistent state from every crash state.";
    0
  end
  else 1

let () =
  let seq = Arg.(value & opt int 0 & info [ "seq" ] ~doc:"Workload length (1-3; 0 = all)") in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print each workload") in
  let cmd =
    Cmd.v
      (Cmd.info "crashmonkey" ~doc:"Crash-consistency campaign against WineFS")
      Term.(const run $ seq $ verbose)
  in
  exit (Cmd.eval' cmd)
