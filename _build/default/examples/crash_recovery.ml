(* Crash-consistency demo: crash WineFS in the middle of a rename at every
   store fence, remount each crash image, and verify atomicity; then show
   how recovery time scales with the number of files (§5.2).

   Run with:  dune exec examples/crash_recovery.exe *)

module Checker = Repro_crashcheck.Checker
module Ace = Repro_crashcheck.Ace

let () =
  print_endline "CrashMonkey-style exploration of WineFS (cf. Section 5.2)\n";
  let workloads =
    List.filter
      (fun (w : Ace.workload) ->
        List.mem w.w_name
          [ "seq1-rename-replace"; "seq2-create-write"; "seq3-replace-via-tmp" ])
      Ace.all
  in
  List.iter
    (fun (w : Ace.workload) ->
      let r = Checker.run ~workloads:[ w ] () in
      Printf.printf "%-24s %3d crash points, %4d states checked, %d inconsistencies\n"
        w.w_name r.crash_points r.states_checked (List.length r.failures);
      List.iter (fun (_, d) -> Printf.printf "    FAILURE: %s\n" d) r.failures)
    workloads;
  print_endline "\nRecovery time after a crash (scan of per-CPU inode tables):";
  List.iter
    (fun files ->
      let ns, n = Checker.recovery_time ~files ~file_bytes:16384 in
      Printf.printf "  %5d files -> %6.2f ms simulated recovery\n" n
        (float_of_int ns /. 1e6))
    [ 100; 1000; 4000 ]
