(* Concurrency demo: the same create/append/fsync/unlink workload on one
   JBD2-style global journal (ext4-DAX) versus WineFS's per-CPU journals
   (cf. Figure 10).

   Run with:  dune exec examples/pcpu_journal_scaling.exe *)

open Repro_util
module Device = Repro_pmem.Device
module Types = Repro_vfs.Types
module Registry = Repro_baselines.Registry
module W = Repro_workloads.Micro

let point (factory : Repro_baselines.Registry.factory) threads =
  let make () =
    let dev = Device.create ~size:(256 * Units.mib) () in
    factory.make dev (Types.config ~cpus:(max 4 threads) ~inodes_per_cpu:4096 ())
  in
  W.scalability make ~threads ~files_per_thread:4 ~appends_per_file:16

let () =
  print_endline "Metadata scalability: global journal vs per-CPU journals\n";
  Printf.printf "%-10s %8s %12s %14s\n" "FS" "threads" "kops/s" "lock-wait(ms)";
  List.iter
    (fun factory ->
      List.iter
        (fun threads ->
          let p = point factory threads in
          Printf.printf "%-10s %8d %12.1f %14.2f\n" factory.Registry.fs_name threads
            p.kops_per_s
            (float_of_int p.lock_wait_ns /. 1e6))
        [ 1; 4; 16 ];
      print_newline ())
    [ Registry.ext4_dax; Registry.winefs ]
