(* The paper's headline effect in one program: age two file systems the
   same way, run the same memory-mapped database workload on both, and
   watch the page-fault counts and throughput diverge.

   Run with:  dune exec examples/aged_mmap_db.exe *)

open Repro_util
module Device = Repro_pmem.Device
module Types = Repro_vfs.Types
module Registry = Repro_baselines.Registry
module G = Repro_aging.Geriatrix
module Lmdb = Repro_workloads.Lmdb_model

let run_on (factory : Registry.factory) =
  let dev = Device.create ~size:(384 * Units.mib) () in
  let h = factory.make dev (Types.config ~cpus:4 ~inodes_per_cpu:8192 ()) in
  (* Age to 75% utilization with the Agrawal profile (§5.1). *)
  let report = G.age h ~profile:G.agrawal ~target_util:0.75 ~churn_bytes:(12 * Units.gib) () in
  Printf.printf "%-10s aged: util=%.0f%% (%d files live, %d created/deleted)\n"
    factory.fs_name
    (100. *. report.utilization)
    report.live_files report.files_created;
  Printf.printf "%-10s free space in aligned 2MB regions: %.0f%%\n" factory.fs_name
    (100. *. report.free_frag_ratio);
  (* The LMDB-style sparse-mmap database (fillseqbatch, §5.4). *)
  let db = Lmdb.create h ~map_bytes:(64 * Units.mib) () in
  let r = Lmdb.fillseqbatch db ~keys:30_000 () in
  Printf.printf "%-10s LMDB fillseqbatch: %.1f kops/s, %d page faults (%d huge)\n\n"
    factory.fs_name r.kops_per_s r.page_faults r.huge_faults

let () =
  print_endline "LMDB-style mmap database on aged file systems (cf. Figure 7b, Table 2)\n";
  List.iter run_on [ Registry.ext4_dax; Registry.nova; Registry.winefs ]
