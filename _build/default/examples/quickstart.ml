(* Quickstart: create a WineFS image on a simulated PM device, use the
   POSIX-style API, memory-map a file with hugepages, and survive a
   remount.

   Run with:  dune exec examples/quickstart.exe *)

open Repro_util
module Device = Repro_pmem.Device
module Types = Repro_vfs.Types
module Vmem = Repro_memsim.Vmem
module Fs = Winefs.Fs

let () =
  (* A 256MiB simulated persistent-memory device with the Optane-derived
     cost model; every operation below charges simulated nanoseconds. *)
  let dev = Device.create ~size:(256 * Units.mib) () in
  let fs = Fs.format dev (Types.config ~cpus:4 ()) in
  let cpu = Cpu.make ~id:0 () in

  (* POSIX-style usage. *)
  Fs.mkdir fs cpu "/data";
  let fd = Fs.create fs cpu "/data/hello.txt" in
  let n = Fs.pwrite fs cpu fd ~off:0 ~src:"hello, persistent world!\n" in
  Printf.printf "wrote %d bytes; read back: %s" n
    (Fs.pread fs cpu fd ~off:0 ~len:n);
  Fs.fsync fs cpu fd (* a no-op cost-wise: WineFS strict mode is synchronous *);
  Fs.close fs cpu fd;

  (* Memory-mapped usage: fallocate a big file, map it, observe hugepages. *)
  let big = Fs.create fs cpu "/data/pool" in
  Fs.fallocate fs cpu big ~off:0 ~len:(8 * Units.mib);
  let vm = Vmem.create dev in
  let region = Vmem.mmap vm ~len:(8 * Units.mib) ~backing:(Fs.mmap_backing fs big) () in
  Vmem.write vm cpu region ~off:(3 * Units.mib) ~src:"written through the mapping";
  Vmem.persist vm cpu region ~off:(3 * Units.mib) ~len:27;
  Vmem.prefault vm cpu region;
  Printf.printf "mapping: %d bytes via hugepages, %d base pages, %d page faults\n"
    (Vmem.huge_mapped_bytes vm region)
    (Vmem.base_mapped_pages vm region)
    (Counters.get (Vmem.counters vm) "mm.page_faults");
  Printf.printf "data via pread: %s\n" (Fs.pread fs cpu big ~off:(3 * Units.mib) ~len:27);
  Fs.close fs cpu big;

  (* Clean unmount and remount: everything is on the device image. *)
  Fs.unmount fs cpu;
  let fs2 = Fs.mount dev (Types.config ()) in
  let fd2 = Fs.openf fs2 cpu "/data/hello.txt" Types.o_rdonly in
  Printf.printf "after remount: %s" (Fs.pread fs2 cpu fd2 ~off:0 ~len:25);
  Fs.close fs2 cpu fd2;

  (* The simulated cost of everything we just did. *)
  Printf.printf "simulated time elapsed: %.2f us\n"
    (float_of_int (Cpu.now cpu) /. 1e3)
