examples/quickstart.ml: Counters Cpu Printf Repro_memsim Repro_pmem Repro_util Repro_vfs Units Winefs
