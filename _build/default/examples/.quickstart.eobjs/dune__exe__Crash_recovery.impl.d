examples/crash_recovery.ml: List Printf Repro_crashcheck
