examples/quickstart.mli:
