examples/aged_mmap_db.ml: List Printf Repro_aging Repro_baselines Repro_pmem Repro_util Repro_vfs Repro_workloads Units
