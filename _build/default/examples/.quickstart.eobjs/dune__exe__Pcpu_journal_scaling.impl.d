examples/pcpu_journal_scaling.ml: List Printf Repro_baselines Repro_pmem Repro_util Repro_vfs Repro_workloads Units
