examples/aged_mmap_db.mli:
