examples/pcpu_journal_scaling.mli:
