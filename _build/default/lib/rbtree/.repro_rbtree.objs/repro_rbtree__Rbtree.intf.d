lib/rbtree/rbtree.mli:
