lib/rbtree/extent_tree.ml: Int Printf Rbtree Repro_util
