lib/rbtree/rbtree.ml: Int List Printf String
