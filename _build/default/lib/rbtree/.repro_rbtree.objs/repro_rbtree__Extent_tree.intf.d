lib/rbtree/extent_tree.mli:
