(** Red-black tree maps.

    WineFS (like the Linux kernel it reuses them from) keeps its DRAM
    metadata indexes — per-directory entry indexes, free-inode lists and the
    unaligned free-extent pool — in red-black trees.  This is a faithful
    functional red-black tree (Okasaki insertion, Kahrs deletion) behind a
    small mutable handle so call sites read like the kernel's rbtree API.

    Invariants (checked by {!S.check_invariants} and the property suite):
    no red node has a red child, and every root-leaf path crosses the same
    number of black nodes. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module type S = sig
  type key
  type 'a t

  val create : unit -> 'a t
  val clear : 'a t -> unit
  val is_empty : 'a t -> bool
  val size : 'a t -> int

  val insert : 'a t -> key -> 'a -> unit
  (** Replaces the value when the key is already bound. *)

  val remove : 'a t -> key -> unit
  (** No-op when the key is unbound. *)

  val find : 'a t -> key -> 'a option
  val mem : 'a t -> key -> bool

  val min_binding : 'a t -> (key * 'a) option
  val max_binding : 'a t -> (key * 'a) option

  val find_first_geq : 'a t -> key -> (key * 'a) option
  (** Smallest binding with key >= the argument (kernel
      [rb_find_first]-style successor search). *)

  val find_last_leq : 'a t -> key -> (key * 'a) option
  (** Largest binding with key <= the argument (predecessor search). *)

  val iter : 'a t -> (key -> 'a -> unit) -> unit
  (** In ascending key order. *)

  val fold : 'a t -> init:'b -> f:('b -> key -> 'a -> 'b) -> 'b
  val to_list : 'a t -> (key * 'a) list

  val check_invariants : 'a t -> (unit, string) result
  (** Structural red-black + BST invariants; used by tests. *)
end

module Make (Ord : ORDERED) : S with type key = Ord.t

module Int_map : S with type key = int
module String_map : S with type key = string
