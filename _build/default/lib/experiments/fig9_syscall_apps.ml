(** Figure 9: system-call applications on clean file systems — Filebench
    (varmail/fileserver/webserver/webproxy), PostgreSQL pgbench
    read-write, WiredTiger FillRandom/ReadRandom; relaxed-mode group in
    (a–c), strict-mode group in (d–f).  Aging does not move syscall
    performance (§2.3), so clean instances suffice (§5.5).

    Paper shape: WineFS equals or beats the best everywhere; ext4/xfs lag
    on varmail (fsync cost), PMFS lags on metadata-heavy mixes (linear
    directory scans), NOVA loses ~60% on WiredTiger FillRandom (partial-
    block CoW) and ~15% on pgbench (log churn on overwrites). *)

open Repro_util
module Registry = Repro_baselines.Registry
module Fb = Repro_workloads.Filebench
module Pg = Repro_workloads.Pgbench
module Wt = Repro_workloads.Wiredtiger_model

let filebench_row setup (factory : Registry.factory) =
  List.map
    (fun personality ->
      let h = Exp_common.fresh setup factory in
      let threads = min 16 (Fb.default_threads personality) in
      let r =
        Fb.run h ~personality ~threads ~files:(300 * setup.Exp_common.scale)
          ~ops_per_thread:(60 * setup.Exp_common.scale) ()
      in
      r.kops_per_s)
    Fb.all

let pg_row setup factory =
  let h = Exp_common.fresh setup factory in
  let r =
    Pg.run h ~threads:8 ~scale_pages:(512 * setup.Exp_common.scale)
      ~txns_per_thread:(150 * setup.Exp_common.scale) ()
  in
  r.tps /. 1000.

let wt_row setup factory mode =
  let h = Exp_common.fresh setup factory in
  let r =
    Wt.run h ~mode ~threads:8 ~keys:(500 * setup.Exp_common.scale)
      ~ops_per_thread:(300 * setup.Exp_common.scale) ()
  in
  r.kops_per_s

let run ?(scale = 1) () =
  let setup = Exp_common.make ~scale () in
  let cols = "FS" :: List.map Fb.name Fb.all @ [ "pgbench-ktps"; "wt-fill"; "wt-read" ] in
  let group title group =
    let t = Table.create ~title ~columns:cols in
    List.iter
      (fun (factory : Registry.factory) ->
        let fb = filebench_row setup factory in
        let pg = pg_row setup factory in
        let wf = wt_row setup factory `FillRandom in
        let wr = wt_row setup factory `ReadRandom in
        Table.add_float_row t factory.fs_name (fb @ [ pg; wf; wr ]))
      group;
    t
  in
  [
    group "Fig 9(a-c): syscall apps, metadata consistency (kops/s)"
      [ Registry.ext4_dax; Registry.xfs_dax; Registry.pmfs; Registry.splitfs;
        Registry.nova_relaxed; Registry.winefs_relaxed ];
    group "Fig 9(d-f): syscall apps, data consistency (kops/s)"
      [ Registry.nova; Registry.strata; Registry.winefs ];
  ]
