(** §3.6 "Supporting extended attributes for preserving alignment":
    rsync-style copies between two WineFS partitions, with and without
    xattr transfer.  Without the xattr, the receiver serves rsync's small
    writes from holes and the large files lose their hugepages; with it,
    the receiver allocates aligned extents and the copies stay
    hugepage-mappable. *)

open Repro_util
module Device = Repro_pmem.Device
module Types = Repro_vfs.Types
module Registry = Repro_baselines.Registry
module R = Repro_workloads.Rsync_model

let run ?(scale = 1) () =
  let setup = Exp_common.make ~scale () in
  let mk_src () =
    let dev = Device.create ~size:setup.Exp_common.device_bytes () in
    Registry.winefs.make dev (Exp_common.cfg setup)
  in
  (* Receiving partitions are aged: a fresh destination would give rsync
     accidental contiguity and hide the effect. *)
  let mk_dst () = fst (Exp_common.aged setup Registry.winefs ~target_util:0.5) in
  let t =
    Table.create
      ~title:"Sec 3.6: rsync between WineFS partitions — hugepage survival of large files"
      ~columns:[ "transfer"; "files"; "large-file MB"; "hugepage-mappable MB"; "%" ]
  in
  List.iter
    (fun (label, with_xattrs) ->
      let src = mk_src () and dst = mk_dst () in
      R.populate src ~seed:21 ~large_files:(6 * scale) ~small_files:(40 * scale);
      let r = R.copy_tree ~with_xattrs src dst in
      Table.add_row t
        [
          label;
          string_of_int r.files_copied;
          string_of_int (r.large_file_bytes / Units.mib);
          string_of_int (r.huge_mappable_bytes / Units.mib);
          Printf.sprintf "%.0f"
            (100.
            *. float_of_int r.huge_mappable_bytes
            /. float_of_int (max 1 r.large_file_bytes));
        ])
    [ ("rsync -X (xattrs carried)", true); ("rsync (no xattrs)", false) ];
  [ t ]
