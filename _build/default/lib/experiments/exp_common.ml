(** Shared experiment plumbing: scaled sizes, file-system construction,
    aging shortcuts.

    Experiments default to laptop-scale parameters so the whole harness
    runs in minutes; [scale] grows devices and churn toward the paper's
    setup (§5.1: 500GB device, 100GB aged partitions, 165TB of churn).
    All results are simulated time from the cost models — the paper's
    *relative* effects are the reproduction target (see DESIGN.md). *)

open Repro_util
open Repro_vfs
module Device = Repro_pmem.Device
module Registry = Repro_baselines.Registry
module G = Repro_aging.Geriatrix

type setup = {
  scale : int;
  device_bytes : int;
  churn_bytes : int;
  cpus : int;
}

let make ?(scale = 1) () =
  let device_bytes = 384 * Units.mib * scale in
  {
    scale;
    device_bytes;
    (* ~48x capacity of churn by default; the paper uses ~330x. *)
    churn_bytes = device_bytes * 48;
    cpus = 4;
  }

let cfg setup = Types.config ~cpus:setup.cpus ~inodes_per_cpu:8192 ()

let fresh setup (factory : Registry.factory) =
  let dev = Device.create ~size:setup.device_bytes () in
  factory.make dev (cfg setup)

(* Age a fresh instance of [factory] to [target_util] with the Agrawal
   profile (§5.1). *)
let aged setup (factory : Registry.factory) ~target_util =
  let h = fresh setup factory in
  let report =
    G.age h ~profile:G.agrawal ~target_util ~churn_bytes:setup.churn_bytes ()
  in
  (h, report)

(* Fill without churn: the "un-aged" baseline of Figure 1(a). *)
let filled setup (factory : Registry.factory) ~target_util =
  let h = fresh setup factory in
  let report = G.age h ~profile:G.agrawal ~target_util ~churn_bytes:0 () in
  (h, report)

let mb_per_s ~bytes ~ns =
  if ns = 0 then 0. else float_of_int bytes /. float_of_int Units.mib /. (float_of_int ns /. 1e9)

(* The three file systems Figure 1/3 plot. *)
let fig1_filesystems = [ Registry.ext4_dax; Registry.nova; Registry.winefs ]

let handle_counters (Fs_intf.Handle ((module F), fs)) = F.counters fs
let handle_statfs (Fs_intf.Handle ((module F), fs)) = F.statfs fs
