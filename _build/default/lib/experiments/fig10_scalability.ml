(** Figure 10: metadata scalability — per-thread create / append-4KB /
    fsync / unlink, throughput vs thread count.

    Paper shape: WineFS and NOVA scale best (per-CPU journals / per-inode
    logs), PMFS scales (fine-grained journaling) and ext4-DAX / xfs-DAX /
    SplitFS flatten early because fsync commits the global JBD2 journal
    stop-the-world. *)

open Repro_util
module Registry = Repro_baselines.Registry
module W = Repro_workloads.Micro

let thread_counts = [ 1; 2; 4; 8; 16 ]

let filesystems =
  [ Registry.ext4_dax; Registry.xfs_dax; Registry.pmfs; Registry.splitfs;
    Registry.nova; Registry.winefs ]

let run ?(scale = 1) () =
  let setup = Exp_common.make ~scale () in
  let cols = "FS" :: List.map string_of_int thread_counts in
  let t = Table.create ~title:"Fig 10: scalability, kops/s vs threads" ~columns:cols in
  let t_wait =
    Table.create ~title:"Fig 10 (aux): total lock-wait ms at 16 threads" ~columns:[ "FS"; "ms" ]
  in
  List.iter
    (fun (factory : Registry.factory) ->
      let last_wait = ref 0 in
      let points =
        List.map
          (fun threads ->
            let make () =
              let setup = { setup with Exp_common.cpus = max setup.Exp_common.cpus threads } in
              Exp_common.fresh setup factory
            in
            let p =
              W.scalability make ~threads ~files_per_thread:(4 * scale)
                ~appends_per_file:(16 * scale)
            in
            last_wait := p.lock_wait_ns;
            p.kops_per_s)
          thread_counts
      in
      Table.add_float_row t factory.fs_name points;
      Table.add_float_row t_wait factory.fs_name [ float_of_int !last_wait /. 1e6 ])
    filesystems;
  [ t; t_wait ]
