(** Figure 3: free-space fragmentation under aging.

    Ages ext4-DAX, NOVA and WineFS to increasing utilization with the
    Agrawal profile and reports the fraction of free space available as
    2MB-aligned, contiguous regions (the hugepage supply).  Paper shape:
    ext4-DAX and NOVA decay steeply — NOVA hits ~zero around 70% — while
    WineFS (§4) keeps the large majority of its free space aligned. *)

open Repro_util
module G = Repro_aging.Geriatrix

let utilizations = [ 0.1; 0.3; 0.5; 0.7; 0.9 ]

let run ?(scale = 1) () =
  let setup = Exp_common.make ~scale () in
  let cols = "FS" :: List.map (fun u -> Printf.sprintf "%.0f%%" (u *. 100.)) utilizations in
  let t =
    Table.create ~title:"Fig 3: % of free space in aligned 2MB regions (aged)" ~columns:cols
  in
  let t2 =
    Table.create ~title:"Fig 3 (aux): count of free aligned 2MB extents" ~columns:cols
  in
  List.iter
    (fun (factory : Repro_baselines.Registry.factory) ->
      let ratios, counts =
        List.split
          (List.map
             (fun util ->
               let _, report = Exp_common.aged setup factory ~target_util:util in
               (100. *. report.G.free_frag_ratio, float_of_int report.aligned_free_2m))
             utilizations)
      in
      Table.add_float_row t factory.fs_name ratios;
      Table.add_float_row t2 factory.fs_name counts)
    Exp_common.fig1_filesystems;
  [ t; t2 ]
