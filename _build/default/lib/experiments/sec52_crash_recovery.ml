(** §5.2: crash consistency and recovery time.

    Runs the CrashMonkey/ACE campaign against WineFS (every generated
    workload, every fence-level crash point, enumerated persisted-store
    subsets) and reports the summary the paper reports: all crash states
    recover to a consistent state.  Then measures remount-after-crash
    time against the number of files (the paper: 7.8s for 3.5M files /
    675GB; recovery scales with file count, not data volume). *)

open Repro_util
module Checker = Repro_crashcheck.Checker

let run ?(scale = 1) () =
  let t =
    Table.create ~title:"Sec 5.2: CrashMonkey campaign on WineFS"
      ~columns:[ "workloads"; "crash-points"; "states-checked"; "inconsistencies" ]
  in
  let r = Checker.run () in
  Table.add_row t
    [
      string_of_int r.workloads_run;
      string_of_int r.crash_points;
      string_of_int r.states_checked;
      string_of_int (List.length r.failures);
    ];
  List.iteri
    (fun i (w, d) ->
      if i < 3 then
        Table.add_row t [ w; d; ""; "" ] |> ignore)
    r.failures;
  let t_rec =
    Table.create ~title:"Sec 5.2: recovery time after crash vs file count"
      ~columns:[ "files"; "recovery-ms"; "us-per-file" ]
  in
  List.iter
    (fun files ->
      let files = files * scale in
      let ns, n = Checker.recovery_time ~files ~file_bytes:(16 * Units.kib) in
      Table.add_row t_rec
        [
          string_of_int n;
          Printf.sprintf "%.2f" (float_of_int ns /. 1e6);
          Printf.sprintf "%.2f" (float_of_int ns /. 1e3 /. float_of_int (max 1 n));
        ])
    [ 250; 1000; 4000 ];
  [ t; t_rec ]
