(** Figure 6: sequential/random read/write throughput on aged file
    systems, for (a) memory-mapped access, (b) POSIX with metadata
    consistency, (c) POSIX with data consistency.  fsync every 10
    operations on the syscall paths (§5.3).

    Paper shape: WineFS dominates the aged mmap workloads by ~2.3–2.7x
    over NOVA (hugepages); on the syscall workloads everyone is within
    tens of percent, with WineFS matching or slightly beating the best
    (fine-grained journaling + DRAM indexes). *)

open Repro_util
module Types = Repro_vfs.Types
module Registry = Repro_baselines.Registry
module W = Repro_workloads.Micro

let modes = [ ("seq-write", `Seq_write); ("rand-write", `Rand_write);
              ("seq-read", `Seq_read); ("rand-read", `Rand_read) ]

let aged_handle setup factory = fst (Exp_common.aged setup factory ~target_util:0.75)

(* One aged instance per file system; all four modes run against the same
   benchmark file, like the paper's single 50GB file (§5.3). *)
let mmap_row setup (factory : Registry.factory) =
  let h = aged_handle setup factory in
  let s = Exp_common.handle_statfs h in
  let file_bytes =
    min (48 * Units.mib * setup.Exp_common.scale)
      (max (4 * Units.mib) (Units.round_down (s.Types.free / 2) Units.huge_page))
  in
  let points =
    List.map
      (fun (_, mode) ->
        let r =
          W.mmap_rw h ~path:"/fig6" ~file_bytes ~io_bytes:file_bytes ~chunk:(64 * Units.kib)
            ~mode ()
        in
        r.mb_per_s)
      modes
  in
  (factory.fs_name, points)

let syscall_row setup (factory : Registry.factory) =
  let h = aged_handle setup factory in
  let s = Exp_common.handle_statfs h in
  let file_bytes =
    min (32 * Units.mib * setup.Exp_common.scale)
      (max (4 * Units.mib) (Units.round_down (s.Types.free / 2) Units.base_page))
  in
  let points =
    List.map
      (fun (_, mode) ->
        let r =
          W.syscall_rw h ~path:"/fig6s" ~file_bytes ~io_bytes:file_bytes
            ~chunk:Units.base_page ~fsync_every:10 ~mode ()
        in
        r.mb_per_s)
      modes
  in
  (factory.fs_name, points)

let run ?(scale = 1) () =
  let setup = Exp_common.make ~scale () in
  let cols = "FS" :: List.map fst modes in
  let t_mmap = Table.create ~title:"Fig 6(a): aged mmap throughput (MB/s)" ~columns:cols in
  List.iter
    (fun f -> let name, pts = mmap_row setup f in Table.add_float_row t_mmap name pts)
    [ Registry.ext4_dax; Registry.xfs_dax; Registry.pmfs; Registry.nova;
      Registry.splitfs; Registry.winefs ];
  let t_weak =
    Table.create ~title:"Fig 6(b): aged POSIX throughput, metadata consistency (MB/s)"
      ~columns:cols
  in
  List.iter
    (fun f -> let name, pts = syscall_row setup f in Table.add_float_row t_weak name pts)
    [ Registry.ext4_dax; Registry.xfs_dax; Registry.pmfs; Registry.splitfs;
      Registry.nova_relaxed; Registry.winefs_relaxed ];
  let t_strong =
    Table.create ~title:"Fig 6(c): aged POSIX throughput, data consistency (MB/s)"
      ~columns:cols
  in
  List.iter
    (fun f -> let name, pts = syscall_row setup f in Table.add_float_row t_strong name pts)
    [ Registry.nova; Registry.strata; Registry.winefs ];
  [ t_mmap; t_weak; t_strong ]
