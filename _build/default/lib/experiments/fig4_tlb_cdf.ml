(** Figure 4: latency CDF of random reads from a pre-faulted mmap'd PM
    array, 2MB pages vs 4KB pages.

    No page faults occur in the critical path; the difference is TLB
    misses and the page-table entries they drag through the processor
    caches, evicting the application's data (§2.4).  The paper measures a
    ~10x median gap. *)

open Repro_util
module Vmem = Repro_memsim.Vmem
module Registry = Repro_baselines.Registry
module Fs_intf = Repro_vfs.Fs_intf

let read_cdf h ~huge_ok ~array_bytes ~reads ~seed =
  let (Fs_intf.Handle ((module F), fs)) = h in
  let cpu = Cpu.make ~id:0 () in
  let rng = Rng.create seed in
  let fd = F.create fs cpu "/fig4-array" in
  F.fallocate fs cpu fd ~off:0 ~len:array_bytes;
  let vm = Vmem.create (F.device fs) in
  let region = Vmem.mmap vm ~len:array_bytes ~backing:(F.mmap_backing fs fd) ~huge_ok () in
  Vmem.prefault vm cpu region;
  let elems = array_bytes / 64 in
  (* Skewed popularity: the hot set is what hugepages keep cache- and
     TLB-resident (§2.4). *)
  let zipf = Dist.zipf ~n:elems ~theta:0.99 in
  let shuffle i = i * 2654435761 land (elems - 1) in
  let hist = Histogram.create () in
  for _ = 1 to reads do
    let off = shuffle (Dist.sample zipf rng - 1) * 64 in
    let t0 = Cpu.now cpu in
    Vmem.read vm cpu region ~off ~len:8;
    Histogram.add hist (Cpu.now cpu - t0)
  done;
  F.close fs cpu fd;
  (hist, Vmem.counters vm)

let run ?(scale = 1) () =
  let setup = Exp_common.make ~scale () in
  let array_bytes = 64 * Units.mib * scale in
  let reads = 50_000 * scale in
  let t =
    Table.create ~title:"Fig 4: random-read latency over pre-faulted mmap array (ns)"
      ~columns:[ "mapping"; "p25"; "median"; "p75"; "p90"; "p99"; "tlb-misses"; "llc-misses" ]
  in
  let cdfs =
    List.map
      (fun (label, huge_ok) ->
        let h = Exp_common.fresh setup Registry.winefs in
        let hist, c = read_cdf h ~huge_ok ~array_bytes ~reads ~seed:5 in
        Table.add_row t
          [
            label;
            string_of_int (Histogram.percentile hist 25.);
            string_of_int (Histogram.percentile hist 50.);
            string_of_int (Histogram.percentile hist 75.);
            string_of_int (Histogram.percentile hist 90.);
            string_of_int (Histogram.percentile hist 99.);
            string_of_int (Counters.get c "mm.tlb_misses");
            string_of_int (Counters.get c "mm.llc_misses");
          ];
        (label, hist))
      [ ("2MB-pages", true); ("4KB-pages", false) ]
  in
  (* CDF points for plotting. *)
  let t_cdf =
    Table.create ~title:"Fig 4 (CDF points)"
      ~columns:[ "fraction"; "2MB-pages (ns)"; "4KB-pages (ns)" ]
  in
  let percentiles = [ 10.; 25.; 50.; 75.; 90.; 95.; 99. ] in
  List.iter
    (fun p ->
      let v label =
        let hist = List.assoc label cdfs in
        Histogram.percentile hist p
      in
      Table.add_row t_cdf
        [
          Printf.sprintf "%.2f" (p /. 100.);
          string_of_int (v "2MB-pages");
          string_of_int (v "4KB-pages");
        ])
    percentiles;
  [ t; t_cdf ]
