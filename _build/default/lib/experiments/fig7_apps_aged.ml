(** Figure 7 + Table 2: application throughput on file systems aged to
    75% utilization (Agrawal profile), and the page-fault counts behind
    it.

    (a/d) YCSB on the RocksDB-like mmap store, (b/e) LMDB fillseqbatch,
    (c/f) PmemKV fillseq — groups (a–c) hold the metadata-consistency
    file systems, (d–f) the data+metadata-consistency ones (§5.4).

    Paper shape: WineFS beats NOVA by up to 2x (LMDB) and ext4-DAX by up
    to 70% (PmemKV); Table 2 shows competitors taking 1.05x–450x more
    page faults. *)

open Repro_util
module Registry = Repro_baselines.Registry
module KV = Repro_workloads.Kvstore
module Ycsb = Repro_workloads.Ycsb
module Lmdb = Repro_workloads.Lmdb_model
module Pmemkv = Repro_workloads.Pmemkv_model

type app_result = { kops : float; faults : int }

(* One aged instance per file system: load once, then run A-F against the
   loaded store (the standard YCSB methodology). *)
let ycsb_runs setup factory =
  let h = fst (Exp_common.aged setup factory ~target_util:0.75) in
  let store = KV.create h ~segment_bytes:(8 * Units.mib) () in
  let kv =
    {
      Ycsb.kv_read = (fun cpu k -> ignore (KV.read store cpu ~key:k));
      kv_update = (fun cpu k -> KV.update store cpu ~key:k);
      kv_insert = (fun cpu k -> KV.insert store cpu ~key:k);
      kv_scan = (fun cpu k n -> ignore (KV.scan store cpu ~key:k ~count:n));
    }
  in
  let records = 10_000 * setup.Exp_common.scale in
  let operations = 10_000 * setup.Exp_common.scale in
  List.map
    (fun w ->
      let faults0 = Counters.get (KV.vm_counters store) "mm.page_faults" in
      let r = Ycsb.run kv w ~records ~operations in
      {
        kops = r.kops_per_s;
        faults = Counters.get (KV.vm_counters store) "mm.page_faults" - faults0;
      })
    Ycsb.all

let lmdb_run setup factory =
  let h = fst (Exp_common.aged setup factory ~target_util:0.75) in
  let db = Lmdb.create h ~map_bytes:(48 * Units.mib * setup.Exp_common.scale) () in
  let r = Lmdb.fillseqbatch db ~keys:(20_000 * setup.Exp_common.scale) () in
  { kops = r.kops_per_s; faults = r.page_faults }

let pmemkv_run setup factory =
  let h = fst (Exp_common.aged setup factory ~target_util:0.75) in
  let db = Pmemkv.create h ~pool_bytes:(16 * Units.mib) () in
  let r = Pmemkv.fillseq db ~threads:4 ~keys:(8_000 * setup.Exp_common.scale) in
  { kops = r.kops_per_s; faults = r.page_faults }

let metadata_group =
  [ Registry.ext4_dax; Registry.xfs_dax; Registry.nova_relaxed; Registry.splitfs;
    Registry.winefs_relaxed ]

let data_group = [ Registry.nova; Registry.strata; Registry.winefs ]

let run ?(scale = 1) () =
  let setup = Exp_common.make ~scale () in
  let group_tables label group =
    (* YCSB table: columns Load A..F. *)
    let ycsb_cols = "FS" :: List.map Ycsb.name Ycsb.all in
    let t_ycsb =
      Table.create ~title:(Printf.sprintf "Fig 7 YCSB/RocksDB kops/s, aged 75%% (%s)" label)
        ~columns:ycsb_cols
    in
    let t_apps =
      Table.create
        ~title:(Printf.sprintf "Fig 7 LMDB fillseqbatch + PmemKV fillseq kops/s, aged 75%% (%s)" label)
        ~columns:[ "FS"; "LMDB"; "PmemKV" ]
    in
    let t_faults =
      Table.create ~title:(Printf.sprintf "Table 2: page faults, aged 75%% (%s)" label)
        ~columns:[ "FS"; "YCSB-A"; "LMDB"; "PmemKV" ]
    in
    List.iter
      (fun (factory : Registry.factory) ->
        let ycsb_results = ycsb_runs setup factory in
        Table.add_float_row t_ycsb factory.fs_name
          (List.map (fun r -> r.kops) ycsb_results);
        let lm = lmdb_run setup factory in
        let pk = pmemkv_run setup factory in
        Table.add_float_row t_apps factory.fs_name [ lm.kops; pk.kops ];
        let ycsb_a = List.nth ycsb_results 1 in
        Table.add_row t_faults
          [
            factory.fs_name;
            string_of_int ycsb_a.faults;
            string_of_int lm.faults;
            string_of_int pk.faults;
          ])
      group;
    [ t_ycsb; t_apps; t_faults ]
  in
  group_tables "metadata consistency" metadata_group
  @ group_tables "data consistency" data_group
