(** §4 "Using different aging profiles": the Wang-HPC profile fragments
    conventional file systems even harder than Agrawal — the paper reports
    that at just 50% utilization only 28% of ext4-DAX's free space remains
    aligned and unfragmented, versus more than 90% for WineFS. *)

open Repro_util
module G = Repro_aging.Geriatrix
module Registry = Repro_baselines.Registry

let run ?(scale = 1) () =
  let setup = Exp_common.make ~scale () in
  let t =
    Table.create ~title:"Sec 4: aligned free space at 50% utilization, by aging profile (%)"
      ~columns:[ "FS"; "agrawal"; "wang-hpc" ]
  in
  List.iter
    (fun (factory : Registry.factory) ->
      let point profile =
        let h = Exp_common.fresh setup factory in
        let r =
          G.age h ~profile ~target_util:0.5 ~churn_bytes:setup.Exp_common.churn_bytes ()
        in
        100. *. r.free_frag_ratio
      in
      Table.add_float_row t factory.fs_name [ point G.agrawal; point G.wang_hpc ])
    [ Registry.ext4_dax; Registry.winefs ];
  [ t ]
