lib/experiments/sec4_defrag_interference.ml: Cpu Exp_common Printf Repro_baselines Repro_memsim Repro_pmem Repro_util Repro_vfs Rng String Table Units Winefs
