lib/experiments/fig9_syscall_apps.ml: Exp_common List Repro_baselines Repro_util Repro_workloads Table
