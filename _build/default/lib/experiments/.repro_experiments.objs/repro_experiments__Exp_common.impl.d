lib/experiments/exp_common.ml: Fs_intf Repro_aging Repro_baselines Repro_pmem Repro_util Repro_vfs Types Units
