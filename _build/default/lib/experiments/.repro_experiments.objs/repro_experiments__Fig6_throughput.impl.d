lib/experiments/fig6_throughput.ml: Exp_common List Repro_baselines Repro_util Repro_vfs Repro_workloads Table Units
