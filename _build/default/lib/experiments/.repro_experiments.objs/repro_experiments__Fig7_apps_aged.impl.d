lib/experiments/fig7_apps_aged.ml: Counters Exp_common List Printf Repro_baselines Repro_util Repro_workloads Table Units
