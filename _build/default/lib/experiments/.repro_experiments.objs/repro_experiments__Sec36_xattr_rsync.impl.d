lib/experiments/sec36_xattr_rsync.ml: Exp_common List Printf Repro_baselines Repro_pmem Repro_util Repro_vfs Repro_workloads Table Units
