lib/experiments/fig2_mmap_overhead.ml: Exp_common List Printf Repro_baselines Repro_util Repro_workloads Table Units
