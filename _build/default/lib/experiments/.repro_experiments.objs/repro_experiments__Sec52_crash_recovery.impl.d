lib/experiments/sec52_crash_recovery.ml: List Printf Repro_crashcheck Repro_util Table Units
