lib/experiments/sec57_resources.ml: Cpu Exp_common List Printf Repro_baselines Repro_util Repro_vfs Table Units
