lib/experiments/fig1_aging_bandwidth.ml: Exp_common List Printf Repro_baselines Repro_util Repro_vfs Repro_workloads Table Units
