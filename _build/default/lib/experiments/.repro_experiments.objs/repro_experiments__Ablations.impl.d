lib/experiments/ablations.ml: Bytes Counters Cpu Exp_common List Printf Repro_baselines Repro_memsim Repro_pmem Repro_util Repro_vfs Repro_workloads Rng String Table Units Winefs
