lib/experiments/fig10_scalability.ml: Exp_common List Repro_baselines Repro_util Repro_workloads Table
