lib/experiments/fig8_part_cdf.ml: Exp_common Histogram List Printf Repro_baselines Repro_util Repro_workloads Table Units
