lib/experiments/fig3_fragmentation.ml: Exp_common List Printf Repro_aging Repro_baselines Repro_util Table
