lib/experiments/fig4_tlb_cdf.ml: Counters Cpu Dist Exp_common Histogram List Printf Repro_baselines Repro_memsim Repro_util Repro_vfs Rng Table Units
