lib/experiments/sec4_profiles.ml: Exp_common List Repro_aging Repro_baselines Repro_util Table
