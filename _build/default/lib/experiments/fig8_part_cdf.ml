(** Figure 8: P-ART lookup latency distribution across file systems
    (aged setting, §5.4).

    The radix-tree pool is pre-faulted, so the latency split is decided
    by whether the pool file was placed on hugepage-mappable extents:
    WineFS's median is ~56% below the others (fewer TLB misses, and page
    table entries stop evicting hot nodes from the LLC). *)

open Repro_util
module Registry = Repro_baselines.Registry
module Part = Repro_workloads.Part_model

let filesystems =
  [ Registry.ext4_dax; Registry.xfs_dax; Registry.splitfs; Registry.nova; Registry.winefs ]

let run ?(scale = 1) () =
  let setup = Exp_common.make ~scale () in
  let t =
    Table.create ~title:"Fig 8: P-ART lookup latency on aged FSs (ns)"
      ~columns:[ "FS"; "median"; "p90"; "p99"; "tlb-misses"; "llc-misses" ]
  in
  let series =
    List.map
      (fun (factory : Registry.factory) ->
        let h = fst (Exp_common.aged setup factory ~target_util:0.75) in
        let part = Part.create h ~pool_bytes:(48 * Units.mib * scale) () in
        let r =
          Part.lookup_latency_cdf part ~keys:(200_000 * scale) ~hot_set:(25_000 * scale)
            ~lookups:(60_000 * scale) ()
        in
        Table.add_row t
          [
            factory.fs_name;
            string_of_int (Histogram.percentile r.hist 50.);
            string_of_int (Histogram.percentile r.hist 90.);
            string_of_int (Histogram.percentile r.hist 99.);
            string_of_int r.tlb_misses;
            string_of_int r.llc_misses;
          ];
        (factory.fs_name, r.hist))
      filesystems
  in
  let t_cdf =
    Table.create ~title:"Fig 8 (CDF points, ns)"
      ~columns:("fraction" :: List.map (fun (n, _) -> n) series)
  in
  List.iter
    (fun p ->
      Table.add_row t_cdf
        (Printf.sprintf "%.2f" (p /. 100.)
        :: List.map (fun (_, hist) -> string_of_int (Histogram.percentile hist p)) series))
    [ 10.; 25.; 50.; 75.; 90.; 99. ];
  [ t; t_cdf ]
