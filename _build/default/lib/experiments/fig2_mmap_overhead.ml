(** Figure 2 + §2.1: the cost anatomy of memory-mapping.

    (a) Time to memory-map and write a 2MB file with hugepages vs base
    pages, split into data-copy time and page-fault handling — the paper
    shows base pages spend two thirds of total time on 512 faults and
    their page tables, and hugepages make the whole write ~2x faster.

    (b) §2.1's motivating microbenchmark: writing a large file
    sequentially via mmap vs via write() system calls (mmap ~2x faster;
    the syscall run spends far more time in kernel-path overhead). *)

open Repro_util
module W = Repro_workloads.Micro
module Registry = Repro_baselines.Registry

let run ?(scale = 1) () =
  let setup = Exp_common.make ~scale () in
  (* (a) 2MB file, clean WineFS, huge vs base. *)
  let t_fig2 =
    Table.create ~title:"Fig 2: memory-map + write a 2MB file (us)"
      ~columns:[ "mapping"; "total"; "copy"; "fault-handling"; "faults" ]
  in
  List.iter
    (fun (label, huge_ok) ->
      let h = Exp_common.fresh setup Registry.winefs in
      let total, fault_ns, faults = W.mmap_write_2mb_file h ~path:"/fig2" ~huge_ok in
      Table.add_row t_fig2
        [
          label;
          Printf.sprintf "%.0f" (float_of_int total /. 1e3);
          Printf.sprintf "%.0f" (float_of_int (total - fault_ns) /. 1e3);
          Printf.sprintf "%.0f" (float_of_int fault_ns /. 1e3);
          string_of_int faults;
        ])
    [ ("hugepages", true); ("base-pages", false) ];
  (* (b) §2.1: big sequential write, mmap vs syscalls. *)
  let io = 64 * Units.mib * scale in
  let t_sec21 =
    Table.create ~title:"Sec 2.1: sequential write of a large file (MB/s)"
      ~columns:[ "access-mode"; "MB/s" ]
  in
  let h = Exp_common.fresh setup Registry.winefs in
  let m =
    W.mmap_rw h ~path:"/big-mmap" ~file_bytes:io ~io_bytes:io ~chunk:Units.huge_page
      ~mode:`Seq_write ()
  in
  let s =
    W.syscall_rw h ~path:"/big-sys" ~file_bytes:io ~io_bytes:io ~chunk:Units.base_page
      ~fsync_every:1000000 ~mode:`Seq_write ()
  in
  Table.add_float_row t_sec21 "mmap (memcpy)" [ m.mb_per_s ];
  Table.add_float_row t_sec21 "write() syscalls" [ s.mb_per_s ];
  [ t_fig2; t_sec21 ]
