(** Figure 1: write bandwidth to memory-mapped files on un-aged vs aged
    file systems as capacity utilization grows.

    For each utilization point the file system is filled (un-aged) or
    churned (aged, Agrawal profile); then a benchmark file sized to a
    fraction of the remaining space is created with large writes,
    memory-mapped, and written sequentially with 2MB memcpys — §5.3's
    benchmark.  The paper's effect: ext4-DAX and NOVA lose ~50% of their
    bandwidth once aged past 60% utilization because the file can no
    longer be placed on aligned extents; WineFS stays flat. *)

open Repro_util
module Types = Repro_vfs.Types
module Registry = Repro_baselines.Registry
module W = Repro_workloads.Micro

let utilizations = [ 0.0; 0.3; 0.6; 0.9 ]

let bench_one h setup =
  (* Bench file: half the remaining free space, capped. *)
  let s = Exp_common.handle_statfs h in
  let file_bytes =
    max (4 * Units.mib) (Units.round_down (s.Types.free / 2) Units.huge_page)
  in
  let file_bytes = min file_bytes (64 * Units.mib * setup.Exp_common.scale) in
  let r =
    W.mmap_rw h ~path:"/fig1-bench" ~file_bytes ~io_bytes:file_bytes
      ~chunk:Units.huge_page ~mode:`Seq_write ()
  in
  r.mb_per_s

let series setup ~aged_mode =
  List.map
    (fun (factory : Registry.factory) ->
      let points =
        List.map
          (fun util ->
            let h =
              if util = 0.0 then Exp_common.fresh setup factory
              else if aged_mode then fst (Exp_common.aged setup factory ~target_util:util)
              else fst (Exp_common.filled setup factory ~target_util:util)
            in
            bench_one h setup)
          utilizations
      in
      (factory.fs_name, points))
    Exp_common.fig1_filesystems

let run ?(scale = 1) () =
  let setup = Exp_common.make ~scale () in
  let cols = "FS" :: List.map (fun u -> Printf.sprintf "%.0f%%" (u *. 100.)) utilizations in
  let t_new = Table.create ~title:"Fig 1(a): mmap write bandwidth, un-aged (MB/s)" ~columns:cols in
  List.iter (fun (fs, pts) -> Table.add_float_row t_new fs pts) (series setup ~aged_mode:false);
  let t_aged = Table.create ~title:"Fig 1(b): mmap write bandwidth, aged (MB/s)" ~columns:cols in
  List.iter (fun (fs, pts) -> Table.add_float_row t_aged fs pts) (series setup ~aged_mode:true);
  [ t_new; t_aged ]
