(** §5.7 Resource consumption: WineFS's DRAM footprint comes from its
    metadata indexes — per-directory red-black trees (< 64B per entry),
    per-file extent maps, allocator free lists and inode free lists.  The
    paper bounds a full 500GB partition of 4KB files at < 10GB of DRAM;
    this experiment measures the same quantities on an aged instance and
    extrapolates per-file cost. *)

open Repro_util
module Types = Repro_vfs.Types
module Fs_intf = Repro_vfs.Fs_intf
module Registry = Repro_baselines.Registry

let dentry_dram_bytes = 64 (* hashed name + ino + pointers (§5.7) *)
let extent_dram_bytes = 48 (* rbtree node: offsets, lengths, colour, children *)

let run ?(scale = 1) () =
  let setup = Exp_common.make ~scale () in
  let (Fs_intf.Handle ((module F), fs)) =
    fst (Exp_common.aged setup Registry.winefs ~target_util:0.7)
  in
  let cpu = Cpu.make ~id:0 () in
  let files = ref 0 and dirs = ref 0 and extents = ref 0 in
  let rec walk path =
    List.iter
      (fun name ->
        let child = Repro_vfs.Path.concat path name in
        match (F.stat fs cpu child).Types.st_kind with
        | Types.Directory ->
            incr dirs;
            walk child
        | Types.Regular ->
            incr files;
            extents := !extents + List.length (F.file_extents fs cpu child))
      (F.readdir fs cpu path)
  in
  walk "/";
  let s = F.statfs fs in
  let dentries = !files + !dirs in
  let dram =
    (dentries * dentry_dram_bytes)
    + (!extents * extent_dram_bytes)
    + (s.free_extents * extent_dram_bytes)
  in
  let t =
    Table.create ~title:"Sec 5.7: DRAM index footprint of aged WineFS"
      ~columns:[ "metric"; "value" ]
  in
  Table.add_row t [ "device"; Printf.sprintf "%d MiB" (setup.device_bytes / Units.mib) ];
  Table.add_row t [ "utilization"; Printf.sprintf "%.0f%%" (100. *. Types.utilization s) ];
  Table.add_row t [ "files"; string_of_int !files ];
  Table.add_row t [ "directories"; string_of_int !dirs ];
  Table.add_row t [ "file extents"; string_of_int !extents ];
  Table.add_row t [ "free extents"; string_of_int s.free_extents ];
  Table.add_row t [ "estimated DRAM"; Printf.sprintf "%d KiB" (dram / Units.kib) ];
  Table.add_row t
    [ "DRAM per live file"; Printf.sprintf "%d B" (dram / max 1 !files) ];
  (* The paper's bound: a 500GB partition full of 4KB files < 10GB DRAM,
     i.e. < ~82B per file.  Extrapolate our per-file figure. *)
  Table.add_row t
    [
      "extrapolated: 500GB of 4KB files";
      Printf.sprintf "%.1f GiB" (float_of_int (dram / max 1 !files) *. 1.22e8 /. 1e9);
    ];
  [ t ]
