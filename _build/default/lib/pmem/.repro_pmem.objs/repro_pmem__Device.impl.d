lib/pmem/device.ml: Bytes Counters Cpu Hashtbl List Printf Repro_util Simclock String Units
