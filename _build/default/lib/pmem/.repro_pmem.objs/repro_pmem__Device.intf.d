lib/pmem/device.mli: Repro_util
