open Repro_util
module M = Repro_rbtree.Rbtree.String_map

type policy = Dram_rbtree | Pm_linear_scan of float

type entry = { ino : int; slot : int }

type t = { policy : policy; map : entry M.t }

let create policy = { policy; map = M.create () }

let dram_level_ns = 4.

let charge_lookup t (cpu : Cpu.t) =
  match t.policy with
  | Dram_rbtree ->
      (* log2(n) levels of pointer chasing in DRAM. *)
      let n = max 2 (M.size t.map) in
      let levels = int_of_float (ceil (log (float_of_int n) /. log 2.)) in
      Simclock.advance cpu.clock (int_of_float (dram_level_ns *. float_of_int levels))
  | Pm_linear_scan cost_ns ->
      let scanned = max 1 (M.size t.map / 2) in
      Simclock.advance cpu.clock (int_of_float (cost_ns *. float_of_int scanned))

let add t cpu ~name ~ino ~slot =
  charge_lookup t cpu;
  M.insert t.map name { ino; slot }

let remove t cpu name =
  charge_lookup t cpu;
  M.remove t.map name

let lookup t cpu name =
  charge_lookup t cpu;
  match M.find t.map name with Some e -> Some (e.ino, e.slot) | None -> None

let mem t cpu name = lookup t cpu name <> None

let entries t =
  List.rev (M.fold t.map ~init:[] ~f:(fun acc name e -> (name, e.ino) :: acc))

let size t = M.size t.map
