let max_name = 255

let split p =
  if String.length p = 0 || p.[0] <> '/' then
    Types.err EINVAL "path %S is not absolute" p
  else begin
    let parts = String.split_on_char '/' p in
    let parts = List.filter (fun s -> s <> "") parts in
    List.iter
      (fun c ->
        if String.length c > max_name then
          Types.err ENAMETOOLONG "component %S too long" c;
        if c = "." || c = ".." then Types.err EINVAL "unsupported component %S" c)
      parts;
    parts
  end

let dirname p =
  match List.rev (split p) with
  | [] -> "/"
  | _ :: rest -> (
      match List.rev rest with [] -> "/" | parts -> "/" ^ String.concat "/" parts)

let basename p =
  match List.rev (split p) with
  | [] -> Types.err EINVAL "root has no basename"
  | last :: _ -> last

let concat dir name =
  if dir = "/" then "/" ^ name else dir ^ "/" ^ name
