type entry = { ino : int; flags : Types.open_flags; mutable pos : int }

type t = { table : (int, entry) Hashtbl.t; mutable next : int }

let create () = { table = Hashtbl.create 64; next = 3 (* 0-2 reserved, as ever *) }

let alloc t ~ino ~flags =
  let fd = t.next in
  t.next <- t.next + 1;
  Hashtbl.add t.table fd { ino; flags; pos = 0 };
  fd

let get t fd =
  match Hashtbl.find_opt t.table fd with
  | Some e -> e
  | None -> Types.err EBADF "fd %d" fd

let close t fd =
  if not (Hashtbl.mem t.table fd) then Types.err EBADF "fd %d" fd;
  Hashtbl.remove t.table fd

let open_count t = Hashtbl.length t.table

let is_open_ino t ino =
  Hashtbl.fold (fun _ e acc -> acc || e.ino = ino) t.table false
