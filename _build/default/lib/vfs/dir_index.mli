(** Directory-entry index with a pluggable lookup cost model.

    WineFS and NOVA keep per-directory red-black trees in DRAM, making
    lookups effectively free next to PM accesses; PMFS scans its directory
    entries sequentially on PM, which the paper blames for its poor
    metadata performance (§3.5, §5.5).  Both behaviours share this one
    structure — the policy only changes the simulated cost. *)

open Repro_util

type policy =
  | Dram_rbtree  (** O(log n) DRAM walk; a few ns per level *)
  | Pm_linear_scan of float
      (** PMFS-style: lookup/remove charge [cost_ns] per live entry
          scanned (expected half the directory). *)

type t

val create : policy -> t

val add : t -> Cpu.t -> name:string -> ino:int -> slot:int -> unit
(** [slot] is an FS-private payload (e.g. the PM offset of the dentry). *)

val remove : t -> Cpu.t -> string -> unit
val lookup : t -> Cpu.t -> string -> (int * int) option
(** [(ino, slot)]. *)

val mem : t -> Cpu.t -> string -> bool
val entries : t -> (string * int) list
(** [(name, ino)], sorted by name; free of simulated cost (used by tests
    and readdir, which charges separately). *)

val size : t -> int
