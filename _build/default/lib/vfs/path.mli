(** Absolute-path manipulation ("/a/b/c"). *)

val split : string -> string list
(** Components of a normalised absolute path; [""] and ["/"] give [].
    Raises {!Types.Error} [EINVAL] on relative paths, empty components, or
    components over 255 bytes ([ENAMETOOLONG]). *)

val dirname : string -> string
(** ["/a/b/c" -> "/a/b"]; ["/a" -> "/"]. *)

val basename : string -> string
(** ["/a/b/c" -> "c"].  Raises [EINVAL] for the root. *)

val concat : string -> string -> string
(** [concat "/a" "b" = "/a/b"]. *)
