module M = Repro_rbtree.Rbtree.Int_map

type ext = { phys : int; len : int }

type t = { map : ext M.t; mutable bytes : int }

let create () = { map = M.create (); bytes = 0 }

let clear t =
  M.clear t.map;
  t.bytes <- 0

let overlap_check t ~file_off ~len =
  (match M.find_last_leq t.map file_off with
  | Some (o, e) when o + e.len > file_off ->
      invalid_arg (Printf.sprintf "Block_map.insert: overlaps extent at %d" o)
  | _ -> ());
  match M.find_first_geq t.map (file_off + 1) with
  | Some (o, _) when file_off + len > o ->
      invalid_arg (Printf.sprintf "Block_map.insert: overlaps extent at %d" o)
  | _ -> ()

let insert t ~file_off ~phys ~len =
  if len <= 0 || file_off < 0 || phys < 0 then invalid_arg "Block_map.insert: bad extent";
  overlap_check t ~file_off ~len;
  t.bytes <- t.bytes + len;
  (* Coalesce with logically and physically adjacent neighbours (their
     bytes are already counted). *)
  let file_off, phys, len =
    match M.find_last_leq t.map file_off with
    | Some (o, e) when o + e.len = file_off && e.phys + e.len = phys ->
        M.remove t.map o;
        (o, e.phys, e.len + len)
    | _ -> (file_off, phys, len)
  in
  let len =
    match M.find_first_geq t.map (file_off + 1) with
    | Some (o, e) when file_off + len = o && phys + len = e.phys ->
        M.remove t.map o;
        len + e.len
    | _ -> len
  in
  M.insert t.map file_off { phys; len }

let lookup t ~file_off =
  match M.find_last_leq t.map file_off with
  | Some (o, e) when o + e.len > file_off -> Some (e.phys + (file_off - o), o + e.len - file_off)
  | _ -> None

let next_mapped t ~file_off =
  match lookup t ~file_off with
  | Some _ -> Some file_off
  | None -> (
      match M.find_first_geq t.map file_off with Some (o, _) -> Some o | None -> None)

let remove_range t ~file_off ~len =
  if len <= 0 then invalid_arg "Block_map.remove_range";
  let stop = file_off + len in
  let freed = ref [] in
  let rec walk () =
    (* Find any extent intersecting [file_off, stop). *)
    let hit =
      match M.find_last_leq t.map (stop - 1) with
      | Some (o, e) when o + e.len > file_off -> Some (o, e)
      | _ -> None
    in
    match hit with
    | None -> ()
    | Some (o, e) ->
        M.remove t.map o;
        t.bytes <- t.bytes - e.len;
        let cut_lo = max o file_off and cut_hi = min (o + e.len) stop in
        freed := (e.phys + (cut_lo - o), cut_hi - cut_lo) :: !freed;
        (* Keep the unremoved head and tail pieces. *)
        if o < cut_lo then begin
          M.insert t.map o { phys = e.phys; len = cut_lo - o };
          t.bytes <- t.bytes + (cut_lo - o)
        end;
        if o + e.len > cut_hi then begin
          M.insert t.map cut_hi { phys = e.phys + (cut_hi - o); len = o + e.len - cut_hi };
          t.bytes <- t.bytes + (o + e.len - cut_hi)
        end;
        walk ()
  in
  walk ();
  !freed

let truncate_after t size =
  match M.max_binding t.map with
  | None -> []
  | Some (o, e) ->
      let last_end = o + e.len in
      if last_end <= size then [] else remove_range t ~file_off:size ~len:(last_end - size)

let covered t ~file_off ~len =
  let rec go off remaining =
    remaining <= 0
    ||
    match lookup t ~file_off:off with
    | Some (_, run) -> go (off + run) (remaining - run)
    | None -> false
  in
  go file_off len

let huge_candidate t ~chunk_off =
  let huge = Repro_util.Units.huge_page in
  if not (Repro_util.Units.is_aligned chunk_off huge) then None
  else
    match lookup t ~file_off:chunk_off with
    | Some (phys, run) when run >= huge && Repro_util.Units.is_aligned phys huge ->
        Some phys
    | _ -> None

let extents t =
  List.rev
    (M.fold t.map ~init:[] ~f:(fun acc o e -> (o, e.phys, e.len) :: acc))

let extent_count t = M.size t.map
let mapped_bytes t = t.bytes

let check_invariants t =
  match M.check_invariants t.map with
  | Error _ as e -> e
  | Ok () ->
      let exception Bad of string in
      let prev_end = ref (-1) in
      let sum = ref 0 in
      (try
         M.iter t.map (fun o e ->
             if e.len <= 0 then raise (Bad "non-positive extent");
             if o < !prev_end then raise (Bad "overlapping extents");
             prev_end := o + e.len;
             sum := !sum + e.len);
         if !sum <> t.bytes then raise (Bad "mapped_bytes mismatch");
         Ok ()
       with Bad m -> Error m)
