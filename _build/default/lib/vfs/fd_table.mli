(** Open-file-descriptor table (one per mounted file system). *)

type entry = { ino : int; flags : Types.open_flags; mutable pos : int }

type t

val create : unit -> t

val alloc : t -> ino:int -> flags:Types.open_flags -> int
(** Returns a fresh descriptor. *)

val get : t -> int -> entry
(** Raises {!Types.Error} [EBADF] on an unknown or closed descriptor. *)

val close : t -> int -> unit
val open_count : t -> int

val is_open_ino : t -> int -> bool
(** Any live descriptor referencing this inode? *)
