(** Per-file extent map: logical file offsets to physical PM extents.

    The DRAM-side index every file system keeps per inode.  Mappings
    coalesce automatically when both the logical and physical ranges are
    adjacent, so {!extent_count} measures true file fragmentation — the
    quantity that decides whether a 2MB chunk of the file can be mapped by
    a hugepage. *)

type t

val create : unit -> t

val insert : t -> file_off:int -> phys:int -> len:int -> unit
(** Add a mapping.  Raises [Invalid_argument] if it overlaps an existing
    mapping (callers punch holes first with {!remove_range}). *)

val lookup : t -> file_off:int -> (int * int) option
(** [(phys, run)] where [run] is the contiguously-mapped byte count
    starting at [file_off]; [None] in a hole. *)

val next_mapped : t -> file_off:int -> int option
(** Smallest mapped offset >= the argument (hole skipping). *)

val remove_range : t -> file_off:int -> len:int -> (int * int) list
(** Unmap a logical range, splitting boundary extents; returns the freed
    physical runs [(phys, len)]. *)

val truncate_after : t -> int -> (int * int) list
(** Drop all mappings at or beyond the given size; returns freed runs. *)

val covered : t -> file_off:int -> len:int -> bool
(** Entire range mapped (no holes)? *)

val huge_candidate : t -> chunk_off:int -> int option
(** For a 2MB-aligned [chunk_off]: the physical base if the whole 2MB chunk
    is backed by one contiguous extent whose physical base is 2MB-aligned —
    the §2.2 condition for mapping the chunk with a hugepage. *)

val extents : t -> (int * int * int) list
(** [(file_off, phys, len)] in logical order. *)

val extent_count : t -> int
val mapped_bytes : t -> int
val clear : t -> unit
val check_invariants : t -> (unit, string) result
