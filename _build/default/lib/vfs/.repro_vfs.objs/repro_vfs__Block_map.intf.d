lib/vfs/block_map.mli:
