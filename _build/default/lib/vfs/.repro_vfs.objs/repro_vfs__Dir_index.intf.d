lib/vfs/dir_index.mli: Cpu Repro_util
