lib/vfs/path.ml: List String Types
