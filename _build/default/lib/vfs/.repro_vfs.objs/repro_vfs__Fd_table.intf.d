lib/vfs/fd_table.mli: Types
