lib/vfs/path.mli:
