lib/vfs/block_map.ml: List Printf Repro_rbtree Repro_util
