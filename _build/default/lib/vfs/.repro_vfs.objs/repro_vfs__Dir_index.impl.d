lib/vfs/dir_index.ml: Cpu List Repro_rbtree Repro_util Simclock
