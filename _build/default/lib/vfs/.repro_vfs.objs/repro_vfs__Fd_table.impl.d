lib/vfs/fd_table.ml: Hashtbl Types
