lib/vfs/fs_intf.ml: Counters Cpu Repro_memsim Repro_pmem Repro_util Simclock Types
