lib/vfs/types.ml: Format
