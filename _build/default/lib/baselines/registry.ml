(** Conformance proofs and a uniform way to instantiate every file system
    in the study.

    The [module ... : Fs_intf.S] coercions below are the static checks
    that each baseline implements the full interface; experiments pick
    file systems from {!all} / {!metadata_group} / {!data_group}, matching
    the two comparison groups of §5.1. *)

module Fs_intf = Repro_vfs.Fs_intf
module Types = Repro_vfs.Types

module Ext4 : Fs_intf.S = Ext4_dax
module Xfs : Fs_intf.S = Xfs_dax
module Pmfs_fs : Fs_intf.S = Pmfs
module Nova_fs : Fs_intf.S = Nova
module Splitfs_fs : Fs_intf.S = Splitfs
module Strata_fs : Fs_intf.S = Strata

type factory = {
  fs_name : string;
  make : Repro_pmem.Device.t -> Types.config -> Fs_intf.handle;
}

let handle (type a) (module F : Fs_intf.S with type t = a) dev cfg =
  Fs_intf.Handle ((module F), F.format dev cfg)

let winefs =
  { fs_name = "WineFS"; make = (fun dev cfg -> Winefs.Handle.format dev cfg) }

let winefs_relaxed =
  {
    fs_name = "WineFS-Relaxed";
    make = (fun dev cfg -> Winefs.Handle.format dev { cfg with Types.mode = Relaxed });
  }

let ext4_dax =
  {
    fs_name = "ext4-DAX";
    make =
      (fun dev cfg ->
        handle (module Ext4_dax : Fs_intf.S with type t = Ext4_dax.t) dev
          { cfg with Types.mode = Relaxed });
  }

let xfs_dax =
  {
    fs_name = "xfs-DAX";
    make =
      (fun dev cfg ->
        handle (module Xfs_dax : Fs_intf.S with type t = Xfs_dax.t) dev
          { cfg with Types.mode = Relaxed });
  }

let pmfs =
  {
    fs_name = "PMFS";
    make =
      (fun dev cfg ->
        handle (module Pmfs : Fs_intf.S with type t = Pmfs.t) dev
          { cfg with Types.mode = Relaxed });
  }

let nova =
  {
    fs_name = "NOVA";
    make =
      (fun dev cfg ->
        handle (module Nova : Fs_intf.S with type t = Nova.t) dev
          { cfg with Types.mode = Strict });
  }

let nova_relaxed =
  {
    fs_name = "NOVA-Relaxed";
    make =
      (fun dev cfg ->
        handle (module Nova : Fs_intf.S with type t = Nova.t) dev
          { cfg with Types.mode = Relaxed });
  }

let splitfs =
  {
    fs_name = "SplitFS";
    make =
      (fun dev cfg ->
        handle (module Splitfs : Fs_intf.S with type t = Splitfs.t) dev
          { cfg with Types.mode = Relaxed });
  }

let strata =
  {
    fs_name = "Strata";
    make =
      (fun dev cfg ->
        handle (module Strata : Fs_intf.S with type t = Strata.t) dev
          { cfg with Types.mode = Strict });
  }

(* §5.1: the metadata-consistency comparison group... *)
let metadata_group = [ ext4_dax; xfs_dax; pmfs; nova_relaxed; splitfs; winefs_relaxed ]

(* ...and the data+metadata-consistency group. *)
let data_group = [ nova; strata; winefs ]

let all =
  [ winefs; winefs_relaxed; ext4_dax; xfs_dax; pmfs; nova; nova_relaxed; splitfs; strata ]

let by_name name =
  match List.find_opt (fun f -> String.lowercase_ascii f.fs_name = String.lowercase_ascii name) all with
  | Some f -> f
  | None -> invalid_arg ("unknown file system: " ^ name)
