lib/baselines/registry.ml: Ext4_dax List Nova Pmfs Repro_pmem Repro_vfs Splitfs Strata String Winefs Xfs_dax
