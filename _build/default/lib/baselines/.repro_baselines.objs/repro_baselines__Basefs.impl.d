lib/baselines/basefs.ml: Array Bytes Counters Cpu Fun Hashtbl List Option Repro_alloc Repro_journal Repro_memsim Repro_pmem Repro_rbtree Repro_sched Repro_util Repro_vfs Simclock String Units
