lib/baselines/splitfs.ml: Basefs Bytes Ext4_dax Hashtbl List Option Repro_alloc Repro_memsim Repro_pmem Repro_sched Repro_util Repro_vfs String Units
