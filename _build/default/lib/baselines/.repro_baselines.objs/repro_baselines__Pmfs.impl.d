lib/baselines/pmfs.ml: Basefs Repro_alloc Repro_vfs
