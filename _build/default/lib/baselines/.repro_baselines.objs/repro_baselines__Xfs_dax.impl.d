lib/baselines/xfs_dax.ml: Basefs Repro_alloc Repro_vfs
