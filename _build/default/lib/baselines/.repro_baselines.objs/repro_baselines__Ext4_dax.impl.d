lib/baselines/ext4_dax.ml: Basefs Repro_alloc Repro_vfs
