(** Binary codecs for WineFS's persistent structures.

    Pure functions between OCaml records and the byte images stored on PM;
    all multi-byte fields are little-endian.  Kept separate from the file
    system so the crash checker and tests can decode raw device state. *)

val dentry_bytes : int
(** 64 — one cache line per directory entry. *)

val max_name : int
(** Longest file name storable in a dentry (47). *)

module Superblock : sig
  type t = {
    size : int;
    cpus : int;
    inodes_per_cpu : int;
    mode_strict : bool;
    clean : bool;
  }

  val bytes : int
  val encode : t -> bytes
  val decode : bytes -> t option
  (** [None] on bad magic. *)
end

module Inode : sig
  type header = {
    valid : bool;
    is_dir : bool;
    xattr_align : bool;
    size : int;
    nlink : int;
    extent_count : int;
    overflow : int;  (** phys offset of first overflow block; 0 = none *)
  }

  val header_bytes : int
  (** 64 — the journaled unit for inode updates. *)

  val encode_header : header -> bytes
  val decode_header : bytes -> header

  val extent_slot_off : int -> int
  (** Byte offset within the 256B inode of inline extent slot [i]. *)

  val extent_bytes : int
  (** 24. *)

  val encode_extent : file_off:int -> phys:int -> len:int -> bytes
  val decode_extent : bytes -> int * int * int
end

module Dentry : sig
  type t = { ino : int; name : string }

  val encode : t -> bytes
  (** Raises {!Repro_vfs.Types.Error} [ENAMETOOLONG] for long names. *)

  val decode : bytes -> t option
  (** [None] for a free slot (ino = 0). *)

  val free_slot : bytes
end

module Overflow : sig
  (** Extent-list continuation block (4KB). *)

  val capacity : int
  (** Extent records per block (169). *)

  val header_bytes : int
  val encode_header : next:int -> count:int -> bytes
  val decode_header : bytes -> int * int
  val record_off : int -> int
end

module Serial : sig
  (** Free-list serialization area written on clean unmount. *)

  val encode : (int * int) list -> capacity_bytes:int -> bytes option
  (** [None] when the list does not fit (mount then falls back to a scan). *)

  val decode : bytes -> (int * int) list option
  val invalid : bytes
  (** Marker making the area unparseable (written at mount). *)
end
