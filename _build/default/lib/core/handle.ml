(** First-class handles to WineFS, and the static check that {!Fs}
    implements the common file-system signature. *)

module Fs_intf = Repro_vfs.Fs_intf

(* The coercion below is the interface-conformance proof. *)
let fs : (module Fs_intf.S with type t = Fs.t) = (module Fs)

let format dev cfg = Fs_intf.Handle ((module Fs : Fs_intf.S with type t = Fs.t), Fs.format dev cfg)

let mount dev cfg = Fs_intf.Handle ((module Fs : Fs_intf.S with type t = Fs.t), Fs.mount dev cfg)
