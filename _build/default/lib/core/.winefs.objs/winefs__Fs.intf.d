lib/core/fs.mli: Repro_util Repro_vfs
