lib/core/numa_policy.ml: Hashtbl
