lib/core/codec.ml: Bytes Char Int64 List Repro_util Repro_vfs String
