lib/core/handle.ml: Fs Repro_vfs
