lib/core/codec.mli:
