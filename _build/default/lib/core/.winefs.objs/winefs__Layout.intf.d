lib/core/layout.mli:
