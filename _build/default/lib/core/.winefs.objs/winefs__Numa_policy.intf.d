lib/core/numa_policy.mli:
