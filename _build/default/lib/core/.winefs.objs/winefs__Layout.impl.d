lib/core/layout.ml: Array Repro_journal Repro_util Units
