(** WineFS's NUMA-awareness policy (§3.6 "Minimizing remote NUMA accesses").

    Remote PM writes are much costlier than remote reads, so WineFS routes
    writes to a per-process {e home node}: assigned on first write (the
    node with the most free space), inherited by children, and re-assigned
    when the home runs out of space.  Reads are never migrated.

    The policy is pure bookkeeping over a [node_free] oracle supplied by
    the file system; WineFS maps the chosen node to one of that node's
    logical CPUs for allocation.  (The paper's evaluation disables NUMA
    awareness because competing file systems cannot run multi-node; the
    mechanism is exercised by unit tests and an ablation bench.) *)

type t

val create : nodes:int -> node_free:(int -> int) -> t

val home : t -> pid:int -> int
(** The process's home node, assigning it on first use. *)

val fork : t -> parent:int -> child:int -> unit
(** Child processes inherit the parent's home node. *)

val notify_exhausted : t -> pid:int -> unit
(** The process's home ran out of space: pick a new home now. *)

val assigned : t -> pid:int -> int option
