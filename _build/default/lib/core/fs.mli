(** WineFS — the paper's hugepage-aware PM file system (§3).

    Implements the common file-system interface ({!Repro_vfs.Fs_intf.S})
    plus WineFS-specific facilities: the reactive rewriter (§3.6) and its
    queue.  See the implementation for the design commentary; DESIGN.md
    maps each mechanism to the paper section it reproduces. *)

type t

include Repro_vfs.Fs_intf.S with type t := t

val run_rewriter : t -> Repro_util.Cpu.t -> int
(** One pass of the background rewriter (§3.6 "Reactively rewriting a
    file"): every queued fragmented file that is not currently open is
    copied into freshly-allocated aligned extents under a new inode, and
    one journal transaction atomically deletes the old file and re-points
    the directory entry.  Returns the number of files rewritten. *)

val rewrite_queue_length : t -> int
(** Files queued for rewriting (queued by the fault path when it finds a
    fragmented memory-mapped file). *)
