type t = { nodes : int; node_free : int -> int; homes : (int, int) Hashtbl.t }

let create ~nodes ~node_free =
  if nodes <= 0 then invalid_arg "Numa_policy.create: non-positive nodes";
  { nodes; node_free; homes = Hashtbl.create 16 }

let best_node t =
  let best = ref 0 and best_free = ref min_int in
  for n = 0 to t.nodes - 1 do
    let f = t.node_free n in
    if f > !best_free then begin
      best := n;
      best_free := f
    end
  done;
  !best

let home t ~pid =
  match Hashtbl.find_opt t.homes pid with
  | Some n -> n
  | None ->
      let n = best_node t in
      Hashtbl.replace t.homes pid n;
      n

let fork t ~parent ~child =
  let n = home t ~pid:parent in
  Hashtbl.replace t.homes child n

let notify_exhausted t ~pid = Hashtbl.replace t.homes pid (best_node t)

let assigned t ~pid = Hashtbl.find_opt t.homes pid
