(** Deterministic cooperative thread simulator.

    Multi-threaded experiments (the paper's Figure 10 scalability study,
    Filebench, the per-CPU journal contention model) run simulated threads
    whose clocks advance as they touch PM, fault, and wait on locks.  The
    scheduler is a discrete-event loop: it always resumes the runnable
    thread with the smallest simulated clock, so lock-contention effects
    (global JBD2 commit lock vs per-CPU journals) fall out naturally and
    every run is reproducible.

    Threads are OCaml effect-based fibers; they must only block through
    {!lock}/{!yield} (cooperative).  Outside {!run}, {!lock} and {!unlock}
    degrade to free uncontended acquisition so single-threaded code can
    share the same code paths. *)

open Repro_util

type mutex

val create_mutex : unit -> mutex

val lock : mutex -> unit
(** Acquire; blocks the calling simulated thread while held by another.
    FIFO handoff.  Charges a small uncontended-acquisition cost. *)

val unlock : mutex -> unit
(** Raises [Invalid_argument] when the lock is not held by the caller. *)

val with_lock : mutex -> (unit -> 'a) -> 'a

val yield : unit -> unit
(** Let other runnable threads with earlier clocks run. *)

val self : unit -> Cpu.t
(** The calling thread's CPU context.  Outside {!run}, a process-wide
    default CPU 0. *)

val default_cpu : Cpu.t
(** The CPU used outside {!run}; its clock keeps advancing across calls. *)

type stats = {
  makespan_ns : int;  (** max thread clock at completion *)
  total_busy_ns : int;  (** sum of thread clocks *)
  lock_wait_ns : int;  (** total time threads spent blocked on mutexes *)
}

val run : ?numa_nodes:int -> threads:int -> (Cpu.t -> unit) -> stats
(** [run ~threads body] starts [threads] fibers, thread [i] on CPU [i]
    (NUMA node [i * numa_nodes / threads]), and executes them to
    completion.  Not reentrant. *)
