lib/sched/sched.ml: Array Cpu Effect Option Queue Repro_util Simclock
