lib/sched/sched.mli: Cpu Repro_util
