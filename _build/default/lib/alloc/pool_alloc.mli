(** Configurable extent allocator modelling the baseline file systems'
    policies (§2.5, §4):

    - ext4-DAX: goal-based locality allocation with mballoc-style
      power-of-two normalisation — it produces {e some} aligned extents by
      accident but never prefers them;
    - xfs-DAX / PMFS: pure contiguity/locality first- or best-fit that
      disregards alignment entirely (footnote 1: they get no hugepages
      even on a clean file system);
    - NOVA: per-CPU pools; attempts 2MB alignment only when a request is
      an exact multiple of 2MB (§6).

    Unlike {!Aligned_alloc} there is no aligned-extent reservation: what
    the paper shows is precisely that these policies let hugepage-capable
    regions dissolve under churn. *)

type policy = First_fit | Best_fit | Goal of (unit -> int)
(** [Goal f] asks [f] for the current locality goal offset (e.g. the end
    of the file's last extent). *)

type config = {
  per_cpu : bool;  (** partition free space per CPU (NOVA) or global *)
  policy : policy;
  align_exact_2m : bool;  (** NOVA: try 2MB alignment for exact multiples *)
  normalize_pow2 : bool;  (** ext4 mballoc-ish request normalisation *)
}

type extent = { off : int; len : int }

type t

val create : config -> cpus:int -> regions:(int * int) array -> t
(** With [per_cpu = false], regions are merged into one shared pool. *)

val restore : config -> cpus:int -> regions:(int * int) array -> free:(int * int) list -> t

val alloc : ?goal:int -> t -> cpu:int -> len:int -> extent list option
(** May return multiple extents when free space is fragmented; [None] only
    when total free < len.  [goal] overrides the policy with a one-shot
    locality hint (ext4 allocates near the file's last extent). *)

val free : t -> off:int -> len:int -> unit
val free_bytes : t -> int
val aligned_region_count : t -> int
(** Free 2MB-aligned 2MB regions (Figure 3 census). *)

val free_extent_count : t -> int
val largest_free : t -> int
val snapshot : t -> (int * int) list
val check_invariants : t -> (unit, string) result
