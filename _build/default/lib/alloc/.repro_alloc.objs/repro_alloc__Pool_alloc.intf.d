lib/alloc/pool_alloc.mli:
