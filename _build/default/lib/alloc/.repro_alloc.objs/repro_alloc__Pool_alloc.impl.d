lib/alloc/pool_alloc.ml: Array List Printf Repro_rbtree Repro_util Units
