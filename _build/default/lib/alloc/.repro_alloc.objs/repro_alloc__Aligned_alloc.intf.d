lib/alloc/aligned_alloc.mli:
