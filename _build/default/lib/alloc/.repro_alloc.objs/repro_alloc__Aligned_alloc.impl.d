lib/alloc/aligned_alloc.ml: Array List Printf Queue Repro_rbtree Repro_util Units
