(** Automatic Crash Explorer-style workload generation (§5.2).

    Produces small system-call sequences that mutate file-system metadata
    (and data, in strict mode), each with a setup phase that establishes
    its preconditions — the same shape as the ACE workloads CrashMonkey
    replays against WineFS in the paper. *)

type op =
  | Mkdir of string
  | Create of string
  | Write of string * int * string  (** path, offset, data *)
  | Append of string * string
  | Rename of string * string
  | Unlink of string
  | Rmdir of string
  | Fallocate of string * int * int
  | Ftruncate of string * int

val pp_op : Format.formatter -> op -> unit

type workload = { w_name : string; setup : op list; test : op list }

val seq1 : workload list
(** Every single-operation workload over the canonical namespace. *)

val seq2 : workload list
(** Two-operation sequences (dependent pairs, ACE seq-2 style). *)

val seq3 : workload list
(** A curated set of three-operation sequences. *)

val all : workload list

val apply : Repro_vfs.Fs_intf.handle -> Repro_util.Cpu.t -> op -> unit
(** Execute one operation (open/close handled internally). *)
