lib/crashcheck/ace.mli: Format Repro_util Repro_vfs
