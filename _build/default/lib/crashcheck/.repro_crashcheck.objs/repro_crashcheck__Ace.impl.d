lib/crashcheck/ace.ml: Format Fs_intf List Repro_vfs String Types
