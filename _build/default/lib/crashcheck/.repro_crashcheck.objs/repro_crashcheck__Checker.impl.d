lib/crashcheck/checker.ml: Ace Array Buffer Cpu Hashtbl List Option Printexc Printf Repro_pmem Repro_util Repro_vfs Rng String Units Winefs
