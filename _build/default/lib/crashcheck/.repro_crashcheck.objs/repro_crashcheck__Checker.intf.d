lib/crashcheck/checker.mli: Ace Repro_util Repro_vfs
