open Repro_vfs

type op =
  | Mkdir of string
  | Create of string
  | Write of string * int * string
  | Append of string * string
  | Rename of string * string
  | Unlink of string
  | Rmdir of string
  | Fallocate of string * int * int
  | Ftruncate of string * int

let pp_op ppf = function
  | Mkdir p -> Format.fprintf ppf "mkdir(%s)" p
  | Create p -> Format.fprintf ppf "create(%s)" p
  | Write (p, off, data) -> Format.fprintf ppf "write(%s,%d,%dB)" p off (String.length data)
  | Append (p, data) -> Format.fprintf ppf "append(%s,%dB)" p (String.length data)
  | Rename (a, b) -> Format.fprintf ppf "rename(%s,%s)" a b
  | Unlink p -> Format.fprintf ppf "unlink(%s)" p
  | Rmdir p -> Format.fprintf ppf "rmdir(%s)" p
  | Fallocate (p, off, len) -> Format.fprintf ppf "fallocate(%s,%d,%d)" p off len
  | Ftruncate (p, n) -> Format.fprintf ppf "ftruncate(%s,%d)" p n

type workload = { w_name : string; setup : op list; test : op list }

let apply (Fs_intf.Handle ((module F), fs)) cpu op =
  match op with
  | Mkdir p -> F.mkdir fs cpu p
  | Create p ->
      let fd = F.create fs cpu p in
      F.close fs cpu fd
  | Write (p, off, data) ->
      let fd = F.openf fs cpu p Types.o_rdwr in
      ignore (F.pwrite fs cpu fd ~off ~src:data);
      F.fsync fs cpu fd;
      F.close fs cpu fd
  | Append (p, data) ->
      let fd = F.openf fs cpu p Types.o_rdwr in
      ignore (F.append fs cpu fd ~src:data);
      F.fsync fs cpu fd;
      F.close fs cpu fd
  | Rename (a, b) -> F.rename fs cpu ~old_path:a ~new_path:b
  | Unlink p -> F.unlink fs cpu p
  | Rmdir p -> F.rmdir fs cpu p
  | Fallocate (p, off, len) ->
      let fd = F.openf fs cpu p Types.o_rdwr in
      F.fallocate fs cpu fd ~off ~len;
      F.close fs cpu fd
  | Ftruncate (p, n) ->
      let fd = F.openf fs cpu p Types.o_rdwr in
      F.ftruncate fs cpu fd n;
      F.close fs cpu fd

(* Canonical namespace: directories A and B, files foo and bar. *)
let base_setup =
  [ Mkdir "/A"; Mkdir "/B"; Create "/A/foo"; Create "/A/bar"; Append ("/A/foo", String.make 3000 'x') ]

let data = String.make 1500 'y'

let singles =
  [
    ("mkdir", Mkdir "/A/sub");
    ("create", Create "/A/new");
    ("write-overwrite", Write ("/A/foo", 100, data));
    ("write-extend", Write ("/A/foo", 2500, data));
    ("write-hole", Write ("/A/bar", 8192, data));
    ("append", Append ("/A/foo", data));
    ("append-empty", Append ("/A/bar", data));
    ("rename-samedir", Rename ("/A/foo", "/A/foo2"));
    ("rename-crossdir", Rename ("/A/foo", "/B/foo"));
    ("rename-replace", Rename ("/A/foo", "/A/bar"));
    ("unlink", Unlink "/A/foo");
    ("rmdir", Rmdir "/B");
    ("fallocate", Fallocate ("/A/bar", 0, 65536));
    ("fallocate-huge", Fallocate ("/A/bar", 0, 4 * 1024 * 1024));
    ("ftruncate-shrink", Ftruncate ("/A/foo", 100));
    ("ftruncate-zero", Ftruncate ("/A/foo", 0));
    ("ftruncate-grow", Ftruncate ("/A/bar", 100000));
  ]

let seq1 =
  List.map (fun (n, op) -> { w_name = "seq1-" ^ n; setup = base_setup; test = [ op ] }) singles

(* ACE-style dependent pairs: the second op observes the first's effect. *)
let seq2 =
  let pairs =
    [
      ("create-write", [ Create "/A/new"; Append ("/A/new", data) ]);
      ("create-rename", [ Create "/A/new"; Rename ("/A/new", "/B/new") ]);
      ("create-unlink", [ Create "/A/new"; Unlink "/A/new" ]);
      ("write-rename", [ Append ("/A/foo", data); Rename ("/A/foo", "/B/foo") ]);
      ("write-unlink", [ Append ("/A/foo", data); Unlink "/A/foo" ]);
      ("rename-create", [ Rename ("/A/foo", "/A/foo2"); Create "/A/foo" ]);
      ("unlink-create", [ Unlink "/A/foo"; Create "/A/foo" ]);
      ("mkdir-create", [ Mkdir "/A/sub"; Create "/A/sub/f" ]);
      ("truncate-append", [ Ftruncate ("/A/foo", 0); Append ("/A/foo", data) ]);
      ("falloc-write", [ Fallocate ("/A/bar", 0, 65536); Write ("/A/bar", 4096, data) ]);
      ("overwrite-overwrite", [ Write ("/A/foo", 0, data); Write ("/A/foo", 1000, data) ]);
      ("rename-rename", [ Rename ("/A/foo", "/B/tmp"); Rename ("/B/tmp", "/A/bar") ]);
    ]
  in
  List.map (fun (n, ops) -> { w_name = "seq2-" ^ n; setup = base_setup; test = ops }) pairs

let seq3 =
  let triples =
    [
      ( "create-write-rename",
        [ Create "/A/new"; Append ("/A/new", data); Rename ("/A/new", "/B/new") ] );
      ( "log-rotate",
        [ Append ("/A/foo", data); Rename ("/A/foo", "/A/foo.old"); Create "/A/foo" ] );
      ( "replace-via-tmp",
        [ Create "/A/tmp"; Append ("/A/tmp", data); Rename ("/A/tmp", "/A/foo") ] );
      ( "mkdir-create-unlink",
        [ Mkdir "/A/sub"; Create "/A/sub/f"; Unlink "/A/sub/f" ] );
      ( "grow-shrink-grow",
        [ Append ("/A/foo", data); Ftruncate ("/A/foo", 64); Append ("/A/foo", data) ] );
    ]
  in
  List.map (fun (n, ops) -> { w_name = "seq3-" ^ n; setup = base_setup; test = ops }) triples

let all = seq1 @ seq2 @ seq3
