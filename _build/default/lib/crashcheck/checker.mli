(** CrashMonkey-style crash-consistency checker for WineFS (§5.2).

    For every workload, the checker re-executes the test sequence with a
    crash injected at each successive store fence.  At the crash point it
    enumerates the legal persisted subsets of in-flight stores (exhaustive
    when few lines are pending, corner cases + random sampling otherwise),
    materialises each crash image, remounts it — running WineFS's per-CPU
    journal recovery — and verifies that the recovered tree equals the
    state either {e before} or {e after} the in-flight operation (atomic,
    synchronous operations; §3.3 strict mode). *)

type result = {
  workloads_run : int;
  crash_points : int;
  states_checked : int;
  failures : (string * string) list;  (** (workload, diagnosis) *)
}

val run :
  ?mode:Repro_vfs.Types.mode ->
  ?workloads:Ace.workload list ->
  ?max_random_subsets:int ->
  ?device_size:int ->
  unit ->
  result
(** Run the campaign against WineFS.  Strict mode checks full data +
    metadata atomicity; [Relaxed] restricts the oracle to metadata
    (file sizes and the namespace, not file contents). *)

val signature_of : Repro_vfs.Fs_intf.handle -> Repro_util.Cpu.t -> string
(** Canonical description of the whole tree (paths, kinds, sizes, content
    digests) — the oracle's comparison key. *)

val recovery_time : files:int -> file_bytes:int -> int * int
(** §5.2 "Time to recover": build a file system with [files] files of
    [file_bytes] each, crash it (no clean unmount), remount, and return
    [(recovery_ns, files_scanned)]. *)
