lib/journal/redo_journal.ml: Bytes Hashtbl Int64 List Repro_pmem Repro_sched Repro_util String Units
