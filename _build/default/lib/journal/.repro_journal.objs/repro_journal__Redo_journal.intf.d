lib/journal/redo_journal.mli: Cpu Repro_pmem Repro_util
