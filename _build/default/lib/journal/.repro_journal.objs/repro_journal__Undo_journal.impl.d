lib/journal/undo_journal.ml: Bytes Int64 List Repro_pmem String
