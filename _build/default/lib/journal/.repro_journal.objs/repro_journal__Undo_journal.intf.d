lib/journal/undo_journal.mli: Cpu Repro_pmem Repro_util
