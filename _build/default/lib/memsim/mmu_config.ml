type t = {
  l1_tlb_4k_sets : int;
  l1_tlb_4k_ways : int;
  l1_tlb_2m_sets : int;
  l1_tlb_2m_ways : int;
  l2_tlb_sets : int;
  l2_tlb_ways : int;
  llc_sets : int;
  llc_ways : int;
  l2_tlb_hit_ns : float;
  walk_base_ns : float;
  llc_hit_ns : float;
  dram_access_ns : float;
  fault_base_ns : float;
  fault_huge_ns : float;
}

let default =
  {
    (* 64-entry L1 dTLB for 4K pages, 32-entry for 2M, 1536-entry L2 STLB. *)
    l1_tlb_4k_sets = 16;
    l1_tlb_4k_ways = 4;
    l1_tlb_2m_sets = 8;
    l1_tlb_2m_ways = 4;
    l2_tlb_sets = 128;
    l2_tlb_ways = 12;
    (* A scaled LLC: 8192 sets x 16 ways x 64B = 8 MiB.  Experiments scale
       working sets with the cache, so hit/miss behaviour matches the
       paper's 32MB LLC against its full-size working sets. *)
    llc_sets = 8192;
    llc_ways = 16;
    l2_tlb_hit_ns = 7.;
    walk_base_ns = 25.;
    llc_hit_ns = 22.;
    dram_access_ns = 85.;
    fault_base_ns = 1500.; (* paper §1: page-fault handling costs 1-2us *)
    fault_huge_ns = 2200.;
  }

let llc_capacity_bytes t = t.llc_sets * t.llc_ways * Repro_util.Units.cacheline
