(** Virtual-memory and memory-mapped-file simulation.

    This is the mechanism behind the paper's headline effect: a file can be
    mapped with 2MB hugepages only when the backing extents are 2MB-sized,
    2MB-aligned and contiguous (§2.2); otherwise every 2MB of the mapping
    costs 512 base-page faults, and afterwards 512× more TLB entries whose
    page-table lines evict application data from the processor caches
    (§2.4, Figures 2 and 4).

    The file system owns the hugepage policy through the {!backing}
    callback it supplies at {!mmap} time: on each fault the callback
    decides — given its own extent layout and allocator — whether the
    faulting 2MB chunk can be served by an aligned hugepage ({!Huge}) or
    falls back to a base page ({!Base}).  This mirrors how WineFS adds
    "hugepage handling on page faults" in its fault path (§3.6).

    Counters (in the space's counter set): "mm.page_faults",
    "mm.huge_faults", "mm.tlb_hits", "mm.tlb_misses", "mm.llc_hits",
    "mm.llc_misses", "mm.fault_ns". *)

open Repro_util

type fault_result =
  | Huge of int
      (** Physical base of a 2MB-aligned extent backing the whole faulting
          2MB chunk.  Must be hugepage-aligned; checked. *)
  | Base of int  (** Physical base of the 4KB page backing the fault. *)
  | Sigbus  (** No backing and the file system refuses to allocate. *)

type backing = Cpu.t -> file_off:int -> huge_ok:bool -> fault_result
(** [backing cpu ~file_off ~huge_ok] resolves a fault at page-aligned
    [file_off].  When [huge_ok], [file_off] is also 2MB-aligned and the
    callback may answer [Huge]. *)

type t
type region

val create : ?config:Mmu_config.t -> Repro_pmem.Device.t -> t
val counters : t -> Counters.t
val config : t -> Mmu_config.t

val mmap :
  t ->
  len:int ->
  backing:backing ->
  ?huge_ok:bool ->
  ?zero_on_fault:bool ->
  unit ->
  region
(** Map [len] bytes of a file.  [huge_ok] (default true) permits hugepage
    mappings; [zero_on_fault] charges a page-sized zeroing write on each
    fault (ext4-DAX-style, §5.4 PmemKV discussion). *)

val munmap : t -> region -> unit
(** Drop all mappings of the region and flush the TLBs. *)

val region_len : region -> int

val read : t -> Cpu.t -> region -> off:int -> len:int -> unit
(** Load [len] bytes; charges TLB/fault/cache/PM time.  Use {!read_into}
    to also obtain the data. *)

val read_into : t -> Cpu.t -> region -> off:int -> dst:bytes -> dst_off:int -> len:int -> unit
val write : t -> Cpu.t -> region -> off:int -> src:string -> unit
val write_bytes : t -> Cpu.t -> region -> off:int -> src:bytes -> src_off:int -> len:int -> unit

val fill : t -> Cpu.t -> region -> off:int -> len:int -> char -> unit
(** memset through the mapping. *)

val read_u64 : t -> Cpu.t -> region -> off:int -> int64
val write_u64 : t -> Cpu.t -> region -> off:int -> int64 -> unit

val persist : t -> Cpu.t -> region -> off:int -> len:int -> unit
(** clwb + fence over the mapped range (what PM-native apps do to commit). *)

val prefault : t -> Cpu.t -> region -> unit
(** Touch every page so no faults remain in the critical path (§2.4). *)

val huge_mapped_bytes : t -> region -> int
(** Bytes of the region currently mapped by hugepages. *)

val base_mapped_pages : t -> region -> int

val drop_tlb : t -> unit
(** Flush all TLBs (e.g. after a context switch in experiments). *)

val drop_llc : t -> unit
