(** Cost and capacity parameters of the simulated memory subsystem.

    Defaults follow the paper's measurements (§2.1–§2.4): handling a base
    page fault costs 1–2µs; hugepages divide fault count by 512; TLB misses
    walk DRAM page tables whose entries then pollute the processor caches. *)

type t = {
  (* TLB geometry (Cascade Lake-ish). *)
  l1_tlb_4k_sets : int;
  l1_tlb_4k_ways : int;
  l1_tlb_2m_sets : int;
  l1_tlb_2m_ways : int;
  l2_tlb_sets : int;
  l2_tlb_ways : int;
  (* LLC geometry. *)
  llc_sets : int;
  llc_ways : int;
  (* Costs, nanoseconds. *)
  l2_tlb_hit_ns : float;
  walk_base_ns : float; (* page-walk latency beyond the PTE fetch itself *)
  llc_hit_ns : float;
  dram_access_ns : float; (* page-table entry fetch from DRAM on LLC miss *)
  fault_base_ns : float; (* kernel entry/exit + VMA lookup + PTE install, 4K *)
  fault_huge_ns : float; (* same for a 2MB mapping *)
}

val default : t

val llc_capacity_bytes : t -> int
