(* Each set is a small array scanned linearly; position encodes recency
   (slot 0 = MRU).  Associativities are small (<= 16) so the scan is
   cheap and allocation-free. *)

type t = { sets : int; ways : int; mask : int; slots : int array (* -1 = empty *) }

let create ~sets ~ways =
  if sets <= 0 || sets land (sets - 1) <> 0 then
    invalid_arg "Lru_sets.create: sets must be a positive power of two";
  if ways <= 0 then invalid_arg "Lru_sets.create: non-positive ways";
  { sets; ways; mask = sets - 1; slots = Array.make (sets * ways) (-1) }

(* Multiplicative hash to spread line indexes across sets. *)
let set_of t key = (key * 0x9E3779B1) lsr 7 land t.mask

let access t key =
  let base = set_of t key * t.ways in
  let rec find i = if i >= t.ways then -1 else if t.slots.(base + i) = key then i else find (i + 1) in
  let pos = find 0 in
  let hit = pos >= 0 in
  let last = if hit then pos else t.ways - 1 in
  (* Shift entries down; install key as MRU. *)
  for i = last downto 1 do
    t.slots.(base + i) <- t.slots.(base + i - 1)
  done;
  t.slots.(base) <- key;
  hit

let probe t key =
  let base = set_of t key * t.ways in
  let rec find i = i < t.ways && (t.slots.(base + i) = key || find (i + 1)) in
  find 0

let invalidate t key =
  let base = set_of t key * t.ways in
  for i = 0 to t.ways - 1 do
    if t.slots.(base + i) = key then t.slots.(base + i) <- -1
  done

let clear t = Array.fill t.slots 0 (Array.length t.slots) (-1)

let capacity t = t.sets * t.ways
