lib/memsim/lru_sets.ml: Array
