lib/memsim/mmu_config.ml: Repro_util
