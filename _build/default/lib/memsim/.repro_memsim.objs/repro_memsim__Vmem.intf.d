lib/memsim/vmem.mli: Counters Cpu Mmu_config Repro_pmem Repro_util
