lib/memsim/mmu_config.mli:
