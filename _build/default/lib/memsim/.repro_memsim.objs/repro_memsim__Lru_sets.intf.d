lib/memsim/lru_sets.mli:
