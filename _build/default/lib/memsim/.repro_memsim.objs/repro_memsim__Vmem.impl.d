lib/memsim/vmem.ml: Bytes Counters Cpu Hashtbl Lru_sets Mmu_config Printf Repro_pmem Repro_util Simclock String Units
