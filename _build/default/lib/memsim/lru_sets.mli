(** Set-associative LRU directory over integer keys.

    Building block for the TLB and last-level-cache models: a fixed number
    of sets, each holding [ways] keys in least-recently-used order. *)

type t

val create : sets:int -> ways:int -> t
(** [sets] must be a power of two. *)

val access : t -> int -> bool
(** [access t key] returns [true] on hit.  On miss the key is inserted,
    evicting the set's LRU entry.  Either way the key becomes MRU. *)

val probe : t -> int -> bool
(** Hit test without insertion or LRU update. *)

val invalidate : t -> int -> unit
val clear : t -> unit
val capacity : t -> int
