(** File-system aging in the style of Geriatrix (Kadekodi et al., ATC '18).

    Ages a mounted file system by creating and deleting files drawn from a
    size profile until (a) utilization reaches the target and (b) the
    requested churn volume has been written — the paper ages 100–500GB
    partitions with up to 165TB of churn under the Agrawal profile (§5.1).

    The ager is deterministic given a seed and works against any
    {!Repro_vfs.Fs_intf.handle}, so the same churn sequence hits WineFS
    and every baseline. *)

open Repro_vfs

(** A file-size profile plus directory fan-out. *)
type profile = {
  profile_name : string;
  size_dist : Repro_util.Dist.t;
  dirs : int;  (** files are spread over this many directories *)
}

val agrawal : profile
(** Agrawal et al. (2007/2009): log-normal small files plus a heavy tail;
    calibrated so that files >= 2MB hold about 56% of used capacity
    (§5.1). *)

val wang_hpc : profile
(** Wang (2012) HPC profile: capacity dominated by large files, with the
    more adversarial small-file churn the paper discusses in §4. *)

type report = {
  files_created : int;
  files_deleted : int;
  bytes_written : int;
  live_files : int;
  utilization : float;
  aligned_free_2m : int;
  free_frag_ratio : float;
      (** fraction of free space usable as aligned 2MB regions — the
          Figure 3 y-axis *)
}

val age :
  Fs_intf.handle ->
  ?seed:int ->
  ?write_chunk:int ->
  profile:profile ->
  target_util:float ->
  churn_bytes:int ->
  unit ->
  report
(** Fill to [target_util], then keep creating/deleting at that level until
    [churn_bytes] have been written in total.  Raises nothing on ENOSPC:
    the ager deletes and retries, exactly like a real aging run. *)

val census : Fs_intf.handle -> float * int
(** [(free_frag_ratio, aligned_free_2m)] of a mounted file system. *)

val utilization_of : Fs_intf.handle -> float
