lib/aging/geriatrix.mli: Fs_intf Repro_util Repro_vfs
