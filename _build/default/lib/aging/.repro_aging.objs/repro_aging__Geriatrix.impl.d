lib/aging/geriatrix.ml: Array Cpu Dist Fs_intf Printf Repro_util Repro_vfs Rng String Types Units
