(** PmemKV-like key-value store (§5.4, Figure 7c): data lives in
    [fallocate]d pool files that are memory-mapped and extended by
    creating more pool files as they fill; fillseq inserts 4KB values
    from concurrent threads (the cmap engine). *)

open Repro_vfs

type t

val create :
  Fs_intf.handle -> ?dir:string -> ?pool_bytes:int -> ?value_bytes:int -> unit -> t

val put : t -> Repro_util.Cpu.t -> key:int -> unit
val get : t -> Repro_util.Cpu.t -> key:int -> bool

type result = {
  keys : int;
  elapsed_ns : int;
  kops_per_s : float;
  page_faults : int;
  huge_faults : int;
}

val fillseq : t -> threads:int -> keys:int -> result
val vm_counters : t -> Repro_util.Counters.t
