(** LMDB-like memory-mapped B-tree database (§5.4, Figure 7b).

    The behaviours the paper traces LMDB's file-system sensitivity to:

    - one big {e sparse} data file created with [ftruncate] (never
      [fallocate]), so space materialises on page faults — "this reduces
      space-amplification, but leads to costly page faults";
    - copy-on-write pages: every committed batch writes its leaves (and a
      B-tree spine) to {e fresh} page numbers, then flips one of the two
      meta pages;
    - [fillseqbatch]: batched sequential inserts of 1KB values — LMDB's
      best-performing workload.

    On WineFS a fault in the sparse file is served by allocating an entire
    aligned extent (hugepage); on ext4-DAX/NOVA every 4KB page faults
    separately — reproducing Table 2's 200–250x page-fault gap. *)

open Repro_util
open Repro_vfs
module Vmem = Repro_memsim.Vmem

type t = {
  h : Fs_intf.handle;
  vm : Vmem.t;
  region : Vmem.region;
  page_bytes : int;
  value_bytes : int;
  map_pages : int;
  mutable next_page : int; (* CoW frontier *)
  mutable meta_flip : int;
  index : (int, int * int) Hashtbl.t; (* key -> (page, slot) *)
  mutable committed : int;
}

let create (Fs_intf.Handle ((module F), fs) as h) ?(path = "/lmdb.data")
    ?(map_bytes = 64 * Units.mib) ?(value_bytes = 1024) () =
  let cpu = Cpu.make ~id:0 () in
  let fd = F.create fs cpu path in
  (* Sparse mapping via ftruncate — the LMDB signature move. *)
  F.ftruncate fs cpu fd map_bytes;
  let vm = Vmem.create (F.device fs) in
  let region = Vmem.mmap vm ~len:map_bytes ~backing:(F.mmap_backing fs fd) () in
  F.close fs cpu fd;
  {
    h;
    vm;
    region;
    page_bytes = Units.base_page;
    value_bytes;
    map_pages = map_bytes / Units.base_page;
    next_page = 2 (* pages 0 and 1 are the meta pages *);
    meta_flip = 0;
    index = Hashtbl.create 4096;
    committed = 0;
  }

exception Full

let alloc_page t =
  if t.next_page >= t.map_pages then raise Full;
  let p = t.next_page in
  t.next_page <- p + 1;
  p

let entries_per_leaf t = t.page_bytes / (16 + t.value_bytes)

(* Commit one write transaction containing [keys]: CoW-write the leaf
   pages, a spine of branch pages, then flip a meta page and persist. *)
let commit_batch t cpu keys =
  let per_leaf = max 1 (entries_per_leaf t) in
  let rec leaves = function
    | [] -> 0
    | ks ->
        let batch = List.filteri (fun i _ -> i < per_leaf) ks in
        let rest = List.filteri (fun i _ -> i >= per_leaf) ks in
        let page = alloc_page t in
        let off = page * t.page_bytes in
        List.iteri
          (fun slot key ->
            let e_off = off + (slot * (16 + t.value_bytes)) in
            Vmem.write_u64 t.vm cpu t.region ~off:e_off (Int64.of_int key);
            Vmem.write_u64 t.vm cpu t.region ~off:(e_off + 8) (Int64.of_int t.value_bytes);
            Vmem.fill t.vm cpu t.region ~off:(e_off + 16) ~len:t.value_bytes 'l';
            Hashtbl.replace t.index key (page, slot))
          batch;
        Vmem.persist t.vm cpu t.region ~off ~len:t.page_bytes;
        1 + leaves rest
  in
  let leaf_pages = leaves keys in
  (* Branch spine: roughly log_fanout of the tree, rewritten per commit. *)
  let spine = max 1 (1 + (leaf_pages / 64)) in
  for _ = 1 to spine do
    let page = alloc_page t in
    let off = page * t.page_bytes in
    Vmem.fill t.vm cpu t.region ~off ~len:t.page_bytes 'b';
    Vmem.persist t.vm cpu t.region ~off ~len:t.page_bytes
  done;
  (* Meta-page flip. *)
  let meta_off = t.meta_flip * t.page_bytes in
  t.meta_flip <- 1 - t.meta_flip;
  Vmem.write_u64 t.vm cpu t.region ~off:meta_off (Int64.of_int t.committed);
  Vmem.persist t.vm cpu t.region ~off:meta_off ~len:t.page_bytes;
  t.committed <- t.committed + 1

type result = {
  keys : int;
  elapsed_ns : int;
  kops_per_s : float;
  page_faults : int;
  huge_faults : int;
}

(* db_bench fillseqbatch: sequential keys in batches of [batch]. *)
let fillseqbatch t ?(batch = 100) ~keys () =
  let cpu = Cpu.make ~id:0 () in
  let t0 = Cpu.now cpu in
  let k = ref 0 in
  (try
     while !k < keys do
       let n = min batch (keys - !k) in
       commit_batch t cpu (List.init n (fun i -> !k + i));
       k := !k + n
     done
   with Full -> ());
  let elapsed = Cpu.now cpu - t0 in
  let c = Vmem.counters t.vm in
  {
    keys = !k;
    elapsed_ns = elapsed;
    kops_per_s =
      (if elapsed = 0 then 0. else float_of_int !k /. (float_of_int elapsed /. 1e9) /. 1000.);
    page_faults = Counters.get c "mm.page_faults";
    huge_faults = Counters.get c "mm.huge_faults";
  }

let read t cpu ~key =
  match Hashtbl.find_opt t.index key with
  | Some (page, slot) ->
      let off = (page * t.page_bytes) + (slot * (16 + t.value_bytes)) in
      Vmem.read t.vm cpu t.region ~off ~len:(16 + t.value_bytes);
      true
  | None -> false

let vm_counters t = Vmem.counters t.vm
