(** P-ART: persistent adaptive radix tree (§5.4, Figure 8).

    The paper's P-ART pre-faults a PM pool (vmmalloc-style: one big
    memory-mapped file), inserts 60M keys, then measures the latency
    distribution of lookups over a hot set of 125K keys.  Lookups never
    fault — the figure isolates TLB reach and the cache pollution of page
    table entries (§2.4): with base pages the PTE working set evicts the
    hot nodes from the LLC and median latency is several times higher.

    This is a real (fixed-fanout) radix tree living in the mapped pool:
    four levels of 256-way nodes over 32-bit keys, 8B slots, values inline
    in the leaves.  Lookups are dependent pointer chases through the
    mapping, exactly the access pattern whose latency CDF Figure 8
    plots. *)

open Repro_util
open Repro_vfs
module Vmem = Repro_memsim.Vmem

type t = {
  vm : Vmem.t;
  region : Vmem.region;
  node_bytes : int;
  mutable next_node : int; (* bump allocator, in node units *)
  pool_nodes : int;
  root : int;
}

let levels = 4
let fanout = 256

let create (Fs_intf.Handle ((module F), fs)) ?(path = "/part.pool")
    ?(pool_bytes = 48 * Units.mib) () =
  let cpu = Cpu.make ~id:0 () in
  let fd = F.create fs cpu path in
  (* vmmalloc pool: preallocated, mapped, pre-faulted at initialisation. *)
  F.fallocate fs cpu fd ~off:0 ~len:pool_bytes;
  let vm = Vmem.create (F.device fs) in
  let region = Vmem.mmap vm ~len:pool_bytes ~backing:(F.mmap_backing fs fd) () in
  Vmem.prefault vm cpu region;
  F.close fs cpu fd;
  let node_bytes = fanout * 8 in
  let t =
    {
      vm;
      region;
      node_bytes;
      next_node = 0;
      pool_nodes = pool_bytes / node_bytes;
      root = 0;
    }
  in
  (* Allocate + zero the root. *)
  t.next_node <- 1;
  Vmem.fill t.vm cpu t.region ~off:0 ~len:node_bytes '\000';
  t

exception Pool_full

let alloc_node t cpu =
  if t.next_node >= t.pool_nodes then raise Pool_full;
  let n = t.next_node in
  t.next_node <- n + 1;
  Vmem.fill t.vm cpu t.region ~off:(n * t.node_bytes) ~len:t.node_bytes '\000';
  n

let slot_off t node byte = (node * t.node_bytes) + (byte * 8)

(* Values are tagged with a high bit so a leaf slot is distinguishable
   from a child node index. *)
let value_tag = Int64.shift_left 1L 62

let insert t cpu ~key ~value =
  let node = ref t.root in
  for level = levels - 1 downto 1 do
    let byte = (key lsr (level * 8)) land 0xFF in
    let off = slot_off t !node byte in
    let child = Vmem.read_u64 t.vm cpu t.region ~off in
    if child = 0L then begin
      let fresh = alloc_node t cpu in
      Vmem.write_u64 t.vm cpu t.region ~off (Int64.of_int fresh);
      Vmem.persist t.vm cpu t.region ~off ~len:8;
      node := fresh
    end
    else node := Int64.to_int child
  done;
  let off = slot_off t !node (key land 0xFF) in
  Vmem.write_u64 t.vm cpu t.region ~off (Int64.logor value_tag (Int64.of_int value));
  Vmem.persist t.vm cpu t.region ~off ~len:8

let lookup t cpu ~key =
  let node = ref t.root in
  let result = ref None in
  (try
     for level = levels - 1 downto 1 do
       let byte = (key lsr (level * 8)) land 0xFF in
       let child = Vmem.read_u64 t.vm cpu t.region ~off:(slot_off t !node byte) in
       if child = 0L then raise Exit;
       node := Int64.to_int child
     done;
     let v = Vmem.read_u64 t.vm cpu t.region ~off:(slot_off t !node (key land 0xFF)) in
     if Int64.logand v value_tag <> 0L then
       result := Some (Int64.to_int (Int64.logand v (Int64.sub value_tag 1L)))
   with Exit -> ());
  !result

type cdf_result = {
  lookups : int;
  hist : Histogram.t;
  tlb_misses : int;
  llc_misses : int;
}

(* The Figure 8 experiment: insert [keys], then time [lookups] random
   lookups over a [hot_set]-sized subset. *)
let lookup_latency_cdf t ?(seed = 4242) ~keys ~hot_set ~lookups () =
  let cpu = Cpu.make ~id:0 () in
  let rng = Rng.create seed in
  (* Spread keys over the 32-bit space so node paths diverge. *)
  let key_of i = i * 2654435761 land 0xFFFFFFFF in
  (try
     for i = 0 to keys - 1 do
       insert t cpu ~key:(key_of i) ~value:i
     done
   with Pool_full -> ());
  let hot = Array.init hot_set (fun _ -> key_of (Rng.int rng keys)) in
  let hist = Histogram.create () in
  let c = Vmem.counters t.vm in
  let tlb0 = Counters.get c "mm.tlb_misses" and llc0 = Counters.get c "mm.llc_misses" in
  for _ = 1 to lookups do
    let key = hot.(Rng.int rng hot_set) in
    let t0 = Cpu.now cpu in
    ignore (lookup t cpu ~key);
    Histogram.add hist (Cpu.now cpu - t0)
  done;
  {
    lookups;
    hist;
    tlb_misses = Counters.get c "mm.tlb_misses" - tlb0;
    llc_misses = Counters.get c "mm.llc_misses" - llc0;
  }

let vm_counters t = Vmem.counters t.vm
let node_count t = t.next_node
