open Repro_util

type workload = Load | A | B | C | D | E | F

let name = function
  | Load -> "Load"
  | A -> "A"
  | B -> "B"
  | C -> "C"
  | D -> "D"
  | E -> "E"
  | F -> "F"

let all = [ Load; A; B; C; D; E; F ]

type kv = {
  kv_read : Cpu.t -> int -> unit;
  kv_update : Cpu.t -> int -> unit;
  kv_insert : Cpu.t -> int -> unit;
  kv_scan : Cpu.t -> int -> int -> unit;
}

type result = { ops : int; elapsed_ns : int; kops_per_s : float }

let run kv ?(seed = 99) w ~records ~operations =
  let rng = Rng.create seed in
  let cpu = Cpu.make ~id:0 () in
  let zipf = Dist.zipf ~n:(max 1 records) ~theta:0.99 in
  let inserted = ref records in
  let pick () = Dist.sample zipf rng - 1 in
  let pick_latest () = max 0 (!inserted - Dist.sample zipf rng) in
  let t0 = Cpu.now cpu in
  let ops = if w = Load then records else operations in
  for i = 0 to ops - 1 do
    match w with
    | Load -> kv.kv_insert cpu i
    | A -> if Rng.int rng 100 < 50 then kv.kv_read cpu (pick ()) else kv.kv_update cpu (pick ())
    | B -> if Rng.int rng 100 < 95 then kv.kv_read cpu (pick ()) else kv.kv_update cpu (pick ())
    | C -> kv.kv_read cpu (pick ())
    | D ->
        if Rng.int rng 100 < 95 then kv.kv_read cpu (pick_latest ())
        else begin
          kv.kv_insert cpu !inserted;
          incr inserted
        end
    | E ->
        if Rng.int rng 100 < 95 then kv.kv_scan cpu (pick ()) (1 + Rng.int rng 100)
        else begin
          kv.kv_insert cpu !inserted;
          incr inserted
        end
    | F ->
        if Rng.int rng 100 < 50 then kv.kv_read cpu (pick ())
        else begin
          (* Read-modify-write. *)
          let k = pick () in
          kv.kv_read cpu k;
          kv.kv_update cpu k
        end
  done;
  let elapsed = Cpu.now cpu - t0 in
  {
    ops;
    elapsed_ns = elapsed;
    kops_per_s =
      (if elapsed = 0 then 0. else float_of_int ops /. (float_of_int elapsed /. 1e9) /. 1000.);
  }
