(** YCSB core workloads (Cooper et al., SoCC '10) — the industry-standard
    mixes the paper runs on RocksDB (§5.4, Figure 7a, Table 2). *)

open Repro_util

type workload = Load | A | B | C | D | E | F

val name : workload -> string
val all : workload list

(** The key-value operations a store must provide to be driven. *)
type kv = {
  kv_read : Cpu.t -> int -> unit;
  kv_update : Cpu.t -> int -> unit;
  kv_insert : Cpu.t -> int -> unit;
  kv_scan : Cpu.t -> int -> int -> unit;  (** start key, count *)
}

type result = { ops : int; elapsed_ns : int; kops_per_s : float }

val run :
  kv ->
  ?seed:int ->
  workload ->
  records:int ->
  operations:int ->
  result
(** [records] existing keys (Load inserts them; other workloads assume a
    loaded store and use a zipfian request distribution, theta = 0.99;
    D reads the latest keys). *)
