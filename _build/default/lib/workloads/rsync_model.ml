(** rsync/cp between partitions, with and without WineFS's
    alignment-preserving extended attribute (§3.6).

    Utilities like rsync copy data in small chunks, so a file that owned
    aligned extents on the source would normally be reassembled from holes
    on the destination and lose its hugepages.  WineFS persists an
    "aligned" xattr per file; rsync-like tools carry xattrs across, and
    the receiving WineFS then allocates aligned extents despite the small
    writes.  This model copies a tree between two WineFS instances both
    ways and reports hugepage-mappability of the copies. *)

open Repro_util
open Repro_vfs
module Vmem = Repro_memsim.Vmem

type copy_result = {
  files_copied : int;
  bytes_copied : int;
  huge_mappable_bytes : int;  (** bytes of >=2MB files mappable by hugepages *)
  large_file_bytes : int;
}

(* Hugepage-mappable bytes of one file: whole 2MB file chunks whose
   backing is one 2MB-aligned run. *)
let huge_mappable (Fs_intf.Handle ((module F), fs)) cpu path =
  let exts = F.file_extents fs cpu path in
  let size = (F.stat fs cpu path).Types.st_size in
  let chunks = size / Units.huge_page in
  let mappable = ref 0 in
  for c = 0 to chunks - 1 do
    let chunk_off = c * Units.huge_page in
    let covered_aligned =
      List.exists
        (fun (fo, phys, len) ->
          fo <= chunk_off
          && chunk_off + Units.huge_page <= fo + len
          && Units.is_aligned (phys + (chunk_off - fo)) Units.huge_page)
        exts
    in
    if covered_aligned then mappable := !mappable + Units.huge_page
  done;
  !mappable

(* rsync-style copy: read the source in [chunk]-sized pieces and write
   them to the destination; optionally carry the alignment xattr first,
   the way rsync transfers xattrs before file data. *)
let copy_tree ?(chunk = 128 * Units.kib) ~with_xattrs
    (Fs_intf.Handle ((module Src), src) as hsrc) (Fs_intf.Handle ((module Dst), dst) as hdst)
    =
  let cpu = Cpu.make ~id:0 () in
  let files = ref 0 and bytes = ref 0 and mappable = ref 0 and large = ref 0 in
  let rec walk path =
    List.iter
      (fun name ->
        let p = Path.concat path name in
        match (Src.stat src cpu p).Types.st_kind with
        | Types.Directory ->
            if not (Dst.exists dst cpu p) then Dst.mkdir dst cpu p;
            if with_xattrs then Dst.set_xattr_align dst cpu p false;
            walk p
        | Types.Regular ->
            let sfd = Src.openf src cpu p Types.o_rdonly in
            let size = Src.file_size src sfd in
            let dfd = Dst.create dst cpu p in
            (* rsync applies xattrs so the receiver can honour them during
               the data transfer (§3.6). *)
            if with_xattrs then begin
              Dst.close dst cpu dfd;
              let src_aligned = huge_mappable hsrc cpu p > 0 in
              Dst.set_xattr_align dst cpu p src_aligned;
              ignore (Dst.openf dst cpu p Types.o_rdwr : int)
            end;
            let dfd = if with_xattrs then Dst.openf dst cpu p Types.o_rdwr else dfd in
            let off = ref 0 in
            while !off < size do
              let n = min chunk (size - !off) in
              let data = Src.pread src cpu sfd ~off:!off ~len:n in
              ignore (Dst.pwrite dst cpu dfd ~off:!off ~src:data);
              off := !off + n
            done;
            Dst.fsync dst cpu dfd;
            Dst.close dst cpu dfd;
            Src.close src cpu sfd;
            incr files;
            bytes := !bytes + size;
            if size >= Units.huge_page then begin
              large := !large + size;
              mappable := !mappable + huge_mappable hdst cpu p
            end)
      (Src.readdir src cpu path)
  in
  walk "/";
  {
    files_copied = !files;
    bytes_copied = !bytes;
    huge_mappable_bytes = !mappable;
    large_file_bytes = !large;
  }

(* Build a source population with some multi-MB (hugepage-holding) files
   and many small ones. *)
let populate (Fs_intf.Handle ((module F), fs)) ~seed ~large_files ~small_files =
  let cpu = Cpu.make ~id:0 () in
  let rng = Rng.create seed in
  F.mkdir fs cpu "/data";
  for i = 1 to large_files do
    let p = Printf.sprintf "/data/large%d" i in
    let fd = F.create fs cpu p in
    let size = (2 + Rng.int rng 3) * Units.huge_page in
    let chunkb = String.make Units.huge_page 'L' in
    let off = ref 0 in
    while !off < size do
      ignore (F.pwrite fs cpu fd ~off:!off ~src:chunkb);
      off := !off + Units.huge_page
    done;
    F.close fs cpu fd
  done;
  for i = 1 to small_files do
    let p = Printf.sprintf "/data/small%d" i in
    let fd = F.create fs cpu p in
    ignore (F.pwrite fs cpu fd ~off:0 ~src:(String.make (1 + Rng.int rng 30000) 's'));
    F.close fs cpu fd
  done
