(** RocksDB-like memory-mapped key-value store (§5.4 "YCSB on RocksDB").

    Captures the access pattern the paper measures: the store keeps its
    data in segment files that are preallocated with [fallocate] and
    memory-mapped; writes append records through the mapping; reads load
    values through the mapping.  Whether those segment files land on
    hugepage-mappable extents is entirely the file system's doing — which
    is the experiment. *)

open Repro_vfs

type t

val create :
  Fs_intf.handle ->
  ?dir:string ->
  ?segment_bytes:int ->
  ?value_bytes:int ->
  unit ->
  t

val insert : t -> Repro_util.Cpu.t -> key:int -> unit
val update : t -> Repro_util.Cpu.t -> key:int -> unit
(** Appends a fresh version (LSM-style) and repoints the index. *)

val read : t -> Repro_util.Cpu.t -> key:int -> bool
(** [false] when the key was never inserted. *)

val scan : t -> Repro_util.Cpu.t -> key:int -> count:int -> int
(** Read up to [count] consecutive keys starting at [key]; returns how
    many were found. *)

val key_count : t -> int
val vm_counters : t -> Repro_util.Counters.t
(** The store's memory-mapping counters (page faults, TLB misses). *)
