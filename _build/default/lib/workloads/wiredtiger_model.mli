(** WiredTiger model (§5.5): FillRandom appends variable-sized (~1KB)
    records at unaligned offsets — the pattern that forces NOVA to CoW
    partial tail blocks — and ReadRandom reads records back via an
    index. *)

open Repro_vfs

type result = { ops : int; elapsed_ns : int; kops_per_s : float }

val record_bytes : int

val run :
  Fs_intf.handle ->
  ?seed:int ->
  mode:[ `FillRandom | `ReadRandom ] ->
  threads:int ->
  keys:int ->
  ops_per_thread:int ->
  unit ->
  result
