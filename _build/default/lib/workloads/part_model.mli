(** P-ART: persistent radix tree in a pre-faulted memory-mapped pool
    (§5.4, Figure 8).  A real fixed-fanout radix tree (four 256-way levels
    over 32-bit keys); lookups are dependent pointer chases through the
    mapping — the access pattern whose latency CDF Figure 8 plots. *)

open Repro_vfs

type t

val create : Fs_intf.handle -> ?path:string -> ?pool_bytes:int -> unit -> t
(** Creates, preallocates, maps and pre-faults the pool (vmmalloc-style). *)

exception Pool_full

val insert : t -> Repro_util.Cpu.t -> key:int -> value:int -> unit
val lookup : t -> Repro_util.Cpu.t -> key:int -> int option

type cdf_result = {
  lookups : int;
  hist : Repro_util.Histogram.t;
  tlb_misses : int;
  llc_misses : int;
}

val lookup_latency_cdf :
  t -> ?seed:int -> keys:int -> hot_set:int -> lookups:int -> unit -> cdf_result
(** The Figure 8 experiment: bulk-insert [keys], then time random lookups
    over a [hot_set]-sized subset. *)

val vm_counters : t -> Repro_util.Counters.t
val node_count : t -> int
