(** PostgreSQL pgbench read-write model (§5.5, Figure 9b/9e; similar to
    TPC-B).

    A transaction updates one row in each of the accounts/tellers/branches
    tables (modelled as page reads + in-place page writes), inserts a
    history row (append), then commits by appending a WAL record and
    fsyncing the WAL — the system-call access pattern whose cost is
    dominated by overwrites and fsync behaviour.  The paper credits
    WineFS's win over NOVA to overwrites: NOVA must CoW and churn its
    logs, WineFS journals a small record and writes in place. *)

open Repro_util
open Repro_vfs
module Sched = Repro_sched.Sched

type result = { txns : int; elapsed_ns : int; tps : float }

let page = 8192

let run (Fs_intf.Handle ((module F), fs)) ?(seed = 77) ~threads ~scale_pages
    ~txns_per_thread () =
  let setup = Cpu.make ~id:0 () in
  if not (F.exists fs setup "/pg") then F.mkdir fs setup "/pg";
  (* Tables grow the way PostgreSQL grows them: 8KB page appends.  The
     extents therefore come from small allocations (holes in WineFS), so
     overwrites take the copy-on-write side of the hybrid (§3.4) — the
     paper's explanation for WineFS's pgbench win over NOVA (§5.5). *)
  let page_zero = String.make page '\000' in
  let table name pages =
    let p = "/pg/" ^ name in
    let fd = F.create fs setup p in
    for _ = 1 to pages do
      ignore (F.append fs setup fd ~src:page_zero)
    done;
    F.close fs setup fd;
    (p, pages)
  in
  let accounts = table "accounts" scale_pages in
  let tellers = table "tellers" (max 1 (scale_pages / 10)) in
  let branches = table "branches" (max 1 (scale_pages / 100)) in
  let history = "/pg/history" in
  let wal = "/pg/wal" in
  let fdh = F.create fs setup history in
  F.close fs setup fdh;
  let fdw = F.create fs setup wal in
  F.close fs setup fdw;
  let page_buf = String.make page 'q' in
  let wal_record = String.make 600 'w' in
  let history_row = String.make 64 'h' in
  let total = ref 0 in
  let stats =
    Sched.run ~threads (fun cpu ->
        let rng = Rng.create (seed + (cpu.Cpu.id * 104729)) in
        let afd = F.openf fs cpu (fst accounts) Types.o_rdwr in
        let tfd = F.openf fs cpu (fst tellers) Types.o_rdwr in
        let bfd = F.openf fs cpu (fst branches) Types.o_rdwr in
        let hfd = F.openf fs cpu history Types.o_rdwr in
        let wfd = F.openf fs cpu wal Types.o_rdwr in
        let touch fd pages =
          let off = Rng.int rng pages * page in
          ignore (F.pread fs cpu fd ~off ~len:page);
          ignore (F.pwrite fs cpu fd ~off ~src:page_buf)
        in
        for _ = 1 to txns_per_thread do
          touch afd (snd accounts);
          touch tfd (snd tellers);
          touch bfd (snd branches);
          ignore (F.append fs cpu hfd ~src:history_row);
          (* Commit: WAL append + fsync. *)
          ignore (F.append fs cpu wfd ~src:wal_record);
          F.fsync fs cpu wfd;
          total := !total + 1
        done;
        List.iter (F.close fs cpu) [ afd; tfd; bfd; hfd; wfd ])
  in
  {
    txns = !total;
    elapsed_ns = stats.makespan_ns;
    tps =
      (if stats.makespan_ns = 0 then 0.
       else float_of_int !total /. (float_of_int stats.makespan_ns /. 1e9));
  }
