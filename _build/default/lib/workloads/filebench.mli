(** Filebench personalities (§5.5, Figure 9): varmail, fileserver,
    webserver, webproxy — multi-threaded operation mixes over a
    pre-created file population, following the stock Filebench workload
    definitions. *)

open Repro_vfs

type personality = Varmail | Fileserver | Webserver | Webproxy

val name : personality -> string
val all : personality list

val default_threads : personality -> int
(** Table 1's thread counts (16/50/100/100). *)

val mean_file_bytes : personality -> int

type result = { ops : int; elapsed_ns : int; kops_per_s : float }

val run :
  Fs_intf.handle ->
  ?seed:int ->
  personality:personality ->
  threads:int ->
  files:int ->
  ops_per_thread:int ->
  unit ->
  result
