(** Micro-benchmark workloads behind Figures 1, 2, 6 and 10.

    All results are simulated time; throughput numbers are MB/s of
    simulated work.  Workloads run against any {!Repro_vfs.Fs_intf.handle}. *)

open Repro_vfs

type rw_result = {
  bytes : int;
  elapsed_ns : int;
  mb_per_s : float;
  page_faults : int;
  tlb_misses : int;
  fault_ns : int;
}

val mmap_rw :
  Fs_intf.handle ->
  ?seed:int ->
  path:string ->
  file_bytes:int ->
  io_bytes:int ->
  chunk:int ->
  mode:[ `Seq_write | `Rand_write | `Seq_read | `Rand_read ] ->
  unit ->
  rw_result
(** §5.3 memory-mapped access: mmap [path] (creating/preallocating it to
    [file_bytes] when absent) and memcpy [io_bytes] in [chunk]-sized units,
    sequentially or at random chunk-aligned offsets. *)

val syscall_rw :
  Fs_intf.handle ->
  ?seed:int ->
  ?fsync_every:int ->
  path:string ->
  file_bytes:int ->
  io_bytes:int ->
  chunk:int ->
  mode:[ `Seq_write | `Rand_write | `Seq_read | `Rand_read ] ->
  unit ->
  rw_result
(** §5.3 system-call access: 4KB-granularity pread/pwrite with an fsync
    every [fsync_every] (default 10) operations.  Writes start from an
    empty file for [`Seq_write] (append pattern) and operate in place
    otherwise. *)

val mmap_write_2mb_file :
  Fs_intf.handle -> path:string -> huge_ok:bool -> int * int * int
(** Figure 2: memory-map and write one 2MB file; returns
    [(total_ns, fault_ns, faults)]. *)

type scalability_point = {
  threads : int;
  kops_per_s : float;
  lock_wait_ns : int;
}

val scalability :
  (unit -> Fs_intf.handle) ->
  threads:int ->
  files_per_thread:int ->
  appends_per_file:int ->
  scalability_point
(** Figure 10: each thread creates files, appends 4KB chunks, fsyncs and
    unlinks, in its own directory.  [make_fs] builds a fresh file system
    (one per point so threads contend only on what the design contends
    on). *)
