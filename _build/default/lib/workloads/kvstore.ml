open Repro_util
open Repro_vfs
module Vmem = Repro_memsim.Vmem
module M = Repro_rbtree.Rbtree.Int_map

type segment = { region : Vmem.region; mutable tail : int }

type loc = { seg : int; off : int; len : int }

type t = {
  h : Fs_intf.handle;
  dir : string;
  segment_bytes : int;
  value_bytes : int;
  vm : Vmem.t;
  mutable segments : segment array;
  index : loc M.t; (* key -> latest record *)
  mutable setup_cpu : Cpu.t;
}

let record_bytes t = 16 + t.value_bytes (* key + length header + value *)

let create (Fs_intf.Handle ((module F), fs) as h) ?(dir = "/rocksdb")
    ?(segment_bytes = 8 * Units.mib) ?(value_bytes = 1024) () =
  let cpu = Cpu.make ~id:0 () in
  if not (F.exists fs cpu dir) then F.mkdir fs cpu dir;
  {
    h;
    dir;
    segment_bytes;
    value_bytes;
    vm = Vmem.create (F.device fs);
    segments = [||];
    index = M.create ();
    setup_cpu = cpu;
  }

let add_segment t cpu =
  let (Fs_intf.Handle ((module F), fs)) = t.h in
  let n = Array.length t.segments in
  let path = Printf.sprintf "%s/seg%06d" t.dir n in
  let fd = F.create fs cpu path in
  (* RocksDB-style: preallocate the whole segment, then mmap it. *)
  F.fallocate fs cpu fd ~off:0 ~len:t.segment_bytes;
  let region = Vmem.mmap t.vm ~len:t.segment_bytes ~backing:(F.mmap_backing fs fd) () in
  F.close fs cpu fd;
  let seg = { region; tail = 0 } in
  t.segments <- Array.append t.segments [| seg |];
  n

let append_record t cpu ~key =
  let rb = record_bytes t in
  let seg_idx =
    let n = Array.length t.segments in
    if n > 0 && t.segments.(n - 1).tail + rb <= t.segment_bytes then n - 1
    else add_segment t cpu
  in
  let seg = t.segments.(seg_idx) in
  let off = seg.tail in
  seg.tail <- off + rb;
  (* Header (key, value length) then the value, through the mapping. *)
  Vmem.write_u64 t.vm cpu seg.region ~off (Int64.of_int key);
  Vmem.write_u64 t.vm cpu seg.region ~off:(off + 8) (Int64.of_int t.value_bytes);
  Vmem.fill t.vm cpu seg.region ~off:(off + 16) ~len:t.value_bytes 'v';
  Vmem.persist t.vm cpu seg.region ~off ~len:rb;
  { seg = seg_idx; off; len = rb }

let insert t cpu ~key = M.insert t.index key (append_record t cpu ~key)
let update t cpu ~key = M.insert t.index key (append_record t cpu ~key)

let read_loc t cpu loc =
  let seg = t.segments.(loc.seg) in
  Vmem.read t.vm cpu seg.region ~off:loc.off ~len:loc.len

let read t cpu ~key =
  match M.find t.index key with
  | Some loc ->
      read_loc t cpu loc;
      true
  | None -> false

let scan t cpu ~key ~count =
  let found = ref 0 in
  let k = ref key in
  let exhausted = ref false in
  while !found < count && not !exhausted do
    match M.find_first_geq t.index !k with
    | Some (k', loc) ->
        read_loc t cpu loc;
        incr found;
        k := k' + 1
    | None -> exhausted := true
  done;
  !found

let key_count t = M.size t.index
let vm_counters t = Vmem.counters t.vm
