(** LMDB-like memory-mapped B-tree database (§5.4, Figure 7b).

    Reproduces the access pattern the paper traces LMDB's file-system
    sensitivity to: one big {e sparse} data file created with [ftruncate]
    (on-demand allocation at page-fault time), copy-on-write pages, and a
    meta-page flip per committed batch.  See the implementation header for
    the full rationale. *)

open Repro_vfs

type t

val create :
  Fs_intf.handle -> ?path:string -> ?map_bytes:int -> ?value_bytes:int -> unit -> t

exception Full
(** The CoW frontier reached the end of the map. *)

type result = {
  keys : int;
  elapsed_ns : int;
  kops_per_s : float;
  page_faults : int;
  huge_faults : int;
}

val fillseqbatch : t -> ?batch:int -> keys:int -> unit -> result
(** db_bench's fillseqbatch: sequential keys committed in batches — LMDB's
    best-performing workload (§5.4). *)

val read : t -> Repro_util.Cpu.t -> key:int -> bool
val vm_counters : t -> Repro_util.Counters.t
