(** PostgreSQL pgbench read-write model (§5.5; TPC-B-like): page-granular
    read+overwrite of three tables, a history append, and a WAL append +
    fsync per transaction, from concurrent threads. *)

open Repro_vfs

type result = { txns : int; elapsed_ns : int; tps : float }

val page : int
(** 8192. *)

val run :
  Fs_intf.handle ->
  ?seed:int ->
  threads:int ->
  scale_pages:int ->
  txns_per_thread:int ->
  unit ->
  result
