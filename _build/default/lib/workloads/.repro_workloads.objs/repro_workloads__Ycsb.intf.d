lib/workloads/ycsb.mli: Cpu Repro_util
