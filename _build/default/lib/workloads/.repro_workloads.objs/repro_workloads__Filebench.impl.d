lib/workloads/filebench.ml: Cpu Fs_intf Printf Repro_sched Repro_util Repro_vfs Rng String Types Units
