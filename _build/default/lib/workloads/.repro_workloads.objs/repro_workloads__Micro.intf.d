lib/workloads/micro.mli: Fs_intf Repro_vfs
