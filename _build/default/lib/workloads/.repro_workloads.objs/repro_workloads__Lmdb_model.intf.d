lib/workloads/lmdb_model.mli: Fs_intf Repro_util Repro_vfs
