lib/workloads/micro.ml: Counters Cpu Fs_intf Printf Repro_memsim Repro_pmem Repro_sched Repro_util Repro_vfs Rng String Types Units
