lib/workloads/wiredtiger_model.mli: Fs_intf Repro_vfs
