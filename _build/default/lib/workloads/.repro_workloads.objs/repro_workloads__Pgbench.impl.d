lib/workloads/pgbench.ml: Cpu Fs_intf List Repro_sched Repro_util Repro_vfs Rng String Types
