lib/workloads/ycsb.ml: Cpu Dist Repro_util Rng
