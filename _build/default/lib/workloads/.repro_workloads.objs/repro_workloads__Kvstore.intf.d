lib/workloads/kvstore.mli: Fs_intf Repro_util Repro_vfs
