lib/workloads/part_model.ml: Array Counters Cpu Fs_intf Histogram Int64 Repro_memsim Repro_util Repro_vfs Rng Units
