lib/workloads/filebench.mli: Fs_intf Repro_vfs
