lib/workloads/pmemkv_model.ml: Array Counters Cpu Fs_intf Hashtbl Int64 Printf Repro_memsim Repro_sched Repro_util Repro_vfs Units
