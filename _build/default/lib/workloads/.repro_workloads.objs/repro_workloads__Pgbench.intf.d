lib/workloads/pgbench.mli: Fs_intf Repro_vfs
