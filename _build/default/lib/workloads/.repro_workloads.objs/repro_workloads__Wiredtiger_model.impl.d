lib/workloads/wiredtiger_model.ml: Cpu Fs_intf Hashtbl Printf Repro_sched Repro_util Repro_vfs Rng String Types
