lib/workloads/kvstore.ml: Array Cpu Fs_intf Int64 Printf Repro_memsim Repro_rbtree Repro_util Repro_vfs Units
