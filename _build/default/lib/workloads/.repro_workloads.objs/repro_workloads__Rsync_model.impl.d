lib/workloads/rsync_model.ml: Cpu Fs_intf List Path Printf Repro_memsim Repro_util Repro_vfs Rng String Types Units
