lib/workloads/lmdb_model.ml: Counters Cpu Fs_intf Hashtbl Int64 List Repro_memsim Repro_util Repro_vfs Units
