(** WiredTiger model (§5.5, Figure 9c/9f): MongoDB's default engine
    running FillRandom and ReadRandom with 1KB values.

    The file-system-relevant behaviour the paper isolates: WiredTiger
    appends variable-sized records at {e unaligned} offsets.  NOVA must
    CoW every partial tail block — copying the old bytes to a fresh block
    before appending — while WineFS keeps appending in place under its
    journal, so WineFS wins FillRandom by ~60% (§5.5). *)

open Repro_util
open Repro_vfs
module Sched = Repro_sched.Sched

type result = { ops : int; elapsed_ns : int; kops_per_s : float }

(* Records are deliberately not block-multiples (1KB values plus headers)
   so appends land unaligned. *)
let record_bytes = 1024 + 37

let run (Fs_intf.Handle ((module F), fs)) ?(seed = 55) ~mode ~threads ~keys
    ~ops_per_thread () =
  let setup = Cpu.make ~id:0 () in
  if not (F.exists fs setup "/wt") then F.mkdir fs setup "/wt";
  (* One table file per thread (WiredTiger uses a file per table; spreading
     avoids serialising every append on one inode lock). *)
  let table i = Printf.sprintf "/wt/table-%d" (i mod threads) in
  for i = 0 to threads - 1 do
    let fd = F.create fs setup (table i) in
    F.close fs setup fd
  done;
  let record = String.make record_bytes 'w' in
  (* Index for ReadRandom: key -> (table, offset). *)
  let index = Hashtbl.create 4096 in
  (match mode with
  | `ReadRandom ->
      (* Preload the tables. *)
      for k = 0 to keys - 1 do
        let p = table k in
        let fd = F.openf fs setup p Types.o_rdwr in
        let off = F.file_size fs fd in
        ignore (F.append fs setup fd ~src:record);
        F.close fs setup fd;
        Hashtbl.replace index k (p, off)
      done
  | `FillRandom -> ());
  let total = ref 0 in
  let stats =
    Sched.run ~threads (fun cpu ->
        let rng = Rng.create (seed + (cpu.Cpu.id * 7)) in
        let p = table cpu.Cpu.id in
        let fd = F.openf fs cpu p Types.o_rdwr in
        for i = 1 to ops_per_thread do
          (match mode with
          | `FillRandom ->
              ignore (F.append fs cpu fd ~src:record);
              (* Group commit every 8 inserts. *)
              if i mod 8 = 0 then F.fsync fs cpu fd
          | `ReadRandom -> (
              match Hashtbl.find_opt index (Rng.int rng (max 1 keys)) with
              | Some (path, off) ->
                  let rfd = F.openf fs cpu path Types.o_rdonly in
                  ignore (F.pread fs cpu rfd ~off ~len:record_bytes);
                  F.close fs cpu rfd
              | None -> ()));
          total := !total + 1
        done;
        F.fsync fs cpu fd;
        F.close fs cpu fd)
  in
  {
    ops = !total;
    elapsed_ns = stats.makespan_ns;
    kops_per_s =
      (if stats.makespan_ns = 0 then 0.
       else float_of_int !total /. (float_of_int stats.makespan_ns /. 1e9) /. 1000.);
  }
