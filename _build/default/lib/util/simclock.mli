(** Simulated nanosecond clock.

    Every component of the simulator charges elapsed time to a clock rather
    than measuring wall time.  A clock belongs to one simulated thread of
    execution; experiments derive throughput and latency from clock
    readings, which makes every run deterministic. *)

type t

val create : unit -> t
(** A fresh clock at time 0. *)

val now : t -> int
(** Current simulated time in nanoseconds. *)

val advance : t -> int -> unit
(** [advance c ns] charges [ns] nanoseconds to the clock.  Negative charges
    are rejected with [Invalid_argument]. *)

val advance_to : t -> int -> unit
(** [advance_to c t] moves the clock forward to absolute time [t]; a no-op
    when the clock is already past [t]. *)

val reset : t -> unit
(** Rewind the clock to 0. *)

type span = { mutable total_ns : int; mutable samples : int }
(** Accumulator for timing a recurring section. *)

val span : unit -> span
val record : span -> int -> unit
val mean_ns : span -> float
