(** Execution context of one simulated logical CPU / thread.

    Every operation in the simulator happens on behalf of a CPU: the CPU's
    clock absorbs simulated time, its [id] selects per-CPU file-system
    structures (journal, inode table, allocation pools) and its [node] is
    the NUMA node used for remote-access accounting. *)

type t = { id : int; node : int; clock : Simclock.t }

val make : ?node:int -> id:int -> unit -> t
(** [node] defaults to 0. *)

val now : t -> int
(** Shorthand for [Simclock.now t.clock]. *)
