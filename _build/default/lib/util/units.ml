let cacheline = 64
let kib = 1024
let mib = 1024 * kib
let gib = 1024 * mib
let base_page = 4 * kib
let huge_page = 2 * mib

let pp_bytes ppf n =
  let f = float_of_int n in
  if n >= gib then Format.fprintf ppf "%.1fGiB" (f /. float_of_int gib)
  else if n >= mib then Format.fprintf ppf "%.1fMiB" (f /. float_of_int mib)
  else if n >= kib then Format.fprintf ppf "%.1fKiB" (f /. float_of_int kib)
  else Format.fprintf ppf "%dB" n

let pp_ns ppf ns =
  if ns >= 1e9 then Format.fprintf ppf "%.2fs" (ns /. 1e9)
  else if ns >= 1e6 then Format.fprintf ppf "%.2fms" (ns /. 1e6)
  else if ns >= 1e3 then Format.fprintf ppf "%.2fus" (ns /. 1e3)
  else Format.fprintf ppf "%.0fns" ns

let round_up v quantum =
  if quantum <= 0 then invalid_arg "Units.round_up";
  (v + quantum - 1) / quantum * quantum

let round_down v quantum =
  if quantum <= 0 then invalid_arg "Units.round_down";
  v / quantum * quantum

let is_aligned v quantum = quantum > 0 && v mod quantum = 0
