type t = (string, int ref) Hashtbl.t

let create () : t = Hashtbl.create 32

let cell t name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t name r;
      r

let incr t name = Stdlib.incr (cell t name)

let add t name n =
  let r = cell t name in
  r := !r + n

let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

let reset t = Hashtbl.iter (fun _ r -> r := 0) t

let snapshot t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let diff ~before ~after =
  let module M = Map.Make (String) in
  let to_map l = List.fold_left (fun m (k, v) -> M.add k v m) M.empty l in
  let b = to_map before and a = to_map after in
  let names = M.union (fun _ x _ -> Some x) (M.map (fun _ -> 0) b) (M.map (fun _ -> 0) a) in
  M.bindings names
  |> List.map (fun (k, _) ->
         (k, (match M.find_opt k a with Some v -> v | None -> 0)
             - (match M.find_opt k b with Some v -> v | None -> 0)))

let pp ppf t =
  List.iter (fun (k, v) -> Format.fprintf ppf "%s=%d@ " k v) (snapshot t)
