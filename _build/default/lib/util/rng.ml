type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = int64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let float t bound =
  (* 53 random bits scaled into [0,1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let gaussian t =
  let rec draw () =
    let u = float t 1.0 in
    if u <= 1e-12 then draw () else u
  in
  let u1 = draw () and u2 = float t 1.0 in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let lognormal t ~mu ~sigma = exp (mu +. (sigma *. gaussian t))
