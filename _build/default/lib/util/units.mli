(** Byte-size constants and formatting shared across the simulator. *)

val cacheline : int (* 64 B: PM write/flush granularity *)
val kib : int
val mib : int
val gib : int
val base_page : int (* 4 KiB *)
val huge_page : int (* 2 MiB *)

val pp_bytes : Format.formatter -> int -> unit
(** Human-readable byte count ("12.0MiB"). *)

val pp_ns : Format.formatter -> float -> unit
(** Human-readable duration from nanoseconds ("3.2us"). *)

val round_up : int -> int -> int
(** [round_up v quantum] rounds [v] up to a multiple of [quantum]. *)

val round_down : int -> int -> int
val is_aligned : int -> int -> bool
