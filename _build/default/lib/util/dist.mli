(** Random-variate distributions used by workload and aging generators. *)

type t
(** A distribution over positive integers (file sizes, key ranks, ...). *)

val constant : int -> t
val uniform : lo:int -> hi:int -> t
(** Inclusive bounds. *)

val lognormal : mu:float -> sigma:float -> min:int -> max:int -> t
(** Log-normal clamped to [min,max]; classic file-size shape (Agrawal et
    al. 2007 found file sizes approximately log-normal). *)

val mixture : (float * t) list -> t
(** Weighted mixture; weights need not sum to 1 (they are normalised). *)

val sample : t -> Rng.t -> int

val zipf : n:int -> theta:float -> t
(** Zipfian ranks in [1, n] with skew [theta] (YCSB uses theta = 0.99). *)

val mean_estimate : t -> Rng.t -> samples:int -> float
(** Monte-Carlo mean; used by the ager to pre-size runs. *)
