lib/util/rng.mli:
