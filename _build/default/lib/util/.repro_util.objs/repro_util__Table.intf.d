lib/util/table.mli:
