lib/util/cpu.mli: Simclock
