lib/util/simclock.ml:
