lib/util/counters.ml: Format Hashtbl List Map Stdlib String
