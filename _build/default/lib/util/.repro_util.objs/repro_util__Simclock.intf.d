lib/util/simclock.mli:
