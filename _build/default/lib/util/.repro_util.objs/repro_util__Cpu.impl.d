lib/util/cpu.ml: Simclock
