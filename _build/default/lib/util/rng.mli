(** Deterministic pseudo-random number generator (splitmix64).

    All stochastic behaviour in the simulator draws from an explicit [Rng.t]
    so that experiments are reproducible bit-for-bit from a seed. *)

type t

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. *)

val split : t -> t
(** Derive an independent generator; the parent advances. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller). *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Log-normal deviate with the given parameters of the underlying normal. *)
