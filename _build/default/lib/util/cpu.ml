type t = { id : int; node : int; clock : Simclock.t }

let make ?(node = 0) ~id () =
  if id < 0 then invalid_arg "Cpu.make: negative id";
  { id; node; clock = Simclock.create () }

let now t = Simclock.now t.clock
