type t = { mutable now_ns : int }

let create () = { now_ns = 0 }

let now c = c.now_ns

let advance c ns =
  if ns < 0 then invalid_arg "Simclock.advance: negative duration";
  c.now_ns <- c.now_ns + ns

let advance_to c t = if t > c.now_ns then c.now_ns <- t

let reset c = c.now_ns <- 0

type span = { mutable total_ns : int; mutable samples : int }

let span () = { total_ns = 0; samples = 0 }

let record s ns =
  s.total_ns <- s.total_ns + ns;
  s.samples <- s.samples + 1

let mean_ns s =
  if s.samples = 0 then 0. else float_of_int s.total_ns /. float_of_int s.samples
