(* Profiling driver: where does aging wall time go?

   An instrumented copy of Geriatrix.age with per-operation-class wall
   timers plus a 1kHz stack sampler.  Usage:

     profile_aging.exe SCALE [ext4|winefs|nova|strata|splitfs|pmfs|both]
     profile_aging.exe SCALE frag   # allocator fragmentation probe

   The two views are complementary: the sampler attributes time to
   frames but only fires at allocation safepoints (tight non-allocating
   loops — Array.blit, Bytes.blit — are invisible to it), while the
   per-class timers catch exactly that.  The chunked extent-run fix in
   lib/rbtree came from the timers showing unlink/pwrite growing 3.3x
   and 2.6x between scales 2 and 4 against 2.07x operation growth,
   with nothing new in the sampler profile. *)
open Repro_util
open Repro_vfs
module Registry = Repro_baselines.Registry
module G = Repro_aging.Geriatrix
module Device = Repro_pmem.Device

let now = Unix.gettimeofday

let scale = try int_of_string Sys.argv.(1) with _ -> 1

(* 1kHz CPU-time stack sampler: handlers fire at allocation safepoints,
   so tight non-allocating loops under-sample, but the shape is right. *)
let samples : Printexc.raw_backtrace list ref = ref []

let start_sampler () =
  Sys.set_signal Sys.sigvtalrm
    (Sys.Signal_handle (fun _ -> samples := Printexc.get_callstack 25 :: !samples));
  ignore
    (Unix.setitimer Unix.ITIMER_VIRTUAL
       { Unix.it_interval = 0.001; it_value = 0.001 })

let stop_sampler () =
  ignore
    (Unix.setitimer Unix.ITIMER_VIRTUAL { Unix.it_interval = 0.; it_value = 0. });
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun bt ->
      let s = Printexc.raw_backtrace_to_string bt in
      let lines = String.split_on_char '\n' s in
      (* Count each distinct frame once per sample (inclusive time). *)
      let seen = Hashtbl.create 8 in
      List.iter
        (fun l ->
          let l = String.trim l in
          if String.length l > 0 && not (Hashtbl.mem seen l) then begin
            Hashtbl.replace seen l ();
            Hashtbl.replace tbl l (1 + try Hashtbl.find tbl l with Not_found -> 0)
          end)
        lines)
    !samples;
  let total = List.length !samples in
  let rows = Hashtbl.fold (fun k v acc -> (v, k) :: acc) tbl [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare b a) rows in
  Printf.printf "--- %d samples; top inclusive frames ---\n" total;
  List.iteri
    (fun i (v, k) ->
      if i < 25 then Printf.printf "%5.1f%% %s\n" (100. *. float v /. float total) k)
    rows;
  (* Self time: the innermost frame below the signal machinery. *)
  let self = Hashtbl.create 256 in
  List.iter
    (fun bt ->
      let s = Printexc.raw_backtrace_to_string bt in
      let lines = String.split_on_char '\n' s in
      let lines = List.filter (fun l -> String.length (String.trim l) > 0) lines in
      match lines with
      | _sig :: top :: _ ->
          let top = String.trim top in
          Hashtbl.replace self top (1 + try Hashtbl.find self top with Not_found -> 0)
      | _ -> ())
    !samples;
  let rows = Hashtbl.fold (fun k v acc -> (v, k) :: acc) self [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare b a) rows in
  Printf.printf "--- top self frames ---\n";
  List.iteri
    (fun i (v, k) ->
      if i < 30 then Printf.printf "%5.1f%% %s\n" (100. *. float v /. float total) k)
    rows;
  samples := []

type live = { mutable paths : string array; mutable n : int }

let live_add l p =
  if l.n >= Array.length l.paths then begin
    let bigger = Array.make (max 64 (2 * Array.length l.paths)) "" in
    Array.blit l.paths 0 bigger 0 l.n;
    l.paths <- bigger
  end;
  l.paths.(l.n) <- p;
  l.n <- l.n + 1

let live_remove_at l i =
  let p = l.paths.(i) in
  l.paths.(i) <- l.paths.(l.n - 1);
  l.n <- l.n - 1;
  p

let t_statfs = ref 0.
let t_create = ref 0.
let t_pwrite = ref 0.
let t_fsync = ref 0.
let t_close = ref 0.
let t_unlink = ref 0.
let n_statfs = ref 0
let n_create = ref 0
let n_pwrite = ref 0
let n_unlink = ref 0

let timed acc n f =
  incr n;
  let t0 = now () in
  let r = f () in
  acc := !acc +. (now () -. t0);
  r

let age (Fs_intf.Handle ((module F), fs)) ~churn_bytes ~target_util =
  let profile = G.agrawal in
  let rng = Rng.create 0xA6E in
  let write_chunk = 16 * Units.mib in
  let cpus = Array.init 8 (fun id -> Cpu.make ~id ()) in
  let op_count = ref 0 in
  let next_cpu () =
    incr op_count;
    cpus.(!op_count mod Array.length cpus)
  in
  let cpu = cpus.(0) in
  let chunk = String.make write_chunk 'g' in
  for d = 0 to profile.G.dirs - 1 do
    let path = Printf.sprintf "/g%d" d in
    if not (F.exists fs cpu path) then F.mkdir fs cpu path
  done;
  let live = { paths = Array.make 1024 ""; n = 0 } in
  let written = ref 0 in
  let next_id = ref 0 in
  let statfs () = timed t_statfs n_statfs (fun () -> F.statfs fs) in
  let capacity = (statfs ()).Types.capacity in
  let delete_random () =
    if live.n > 0 then begin
      let i =
        if live.n >= 8 && Rng.bool rng then live.n - 1 - Rng.int rng (live.n / 8)
        else Rng.int rng live.n
      in
      let path = live_remove_at live i in
      try timed t_unlink n_unlink (fun () -> F.unlink fs (next_cpu ()) path)
      with Types.Error (ENOENT, _) -> ()
    end
  in
  let create_one size =
    let path = Printf.sprintf "/g%d/f%d" (Rng.int rng profile.G.dirs) !next_id in
    incr next_id;
    let cpu = next_cpu () in
    match timed t_create n_create (fun () -> F.create fs cpu path) with
    | exception Types.Error (ENOSPC, _) -> false
    | fd ->
        let ok = ref true in
        let off = ref 0 in
        (try
           while !off < size do
             let n = min write_chunk (size - !off) in
             ignore
               (timed t_pwrite n_pwrite (fun () ->
                    F.pwrite_sub fs cpu fd ~off:!off ~src:chunk ~src_off:0 ~len:n));
             written := !written + n;
             off := !off + n
           done
         with Types.Error (ENOSPC, _) -> ok := false);
        timed t_fsync n_create (fun () -> F.fsync fs cpu fd);
        timed t_close n_create (fun () -> F.close fs cpu fd);
        if !ok then begin
          live_add live path;
          true
        end
        else begin
          (try F.unlink fs cpu path with Types.Error (ENOENT, _) -> ());
          false
        end
  in
  let util () = Types.utilization (statfs ()) in
  let stall = ref 0 in
  while util () < target_util && !stall < 64 do
    let size = Dist.sample profile.G.size_dist rng in
    let size = min size (max Units.base_page (capacity / 8)) in
    if create_one size then stall := 0
    else begin
      incr stall;
      delete_random ()
    end
  done;
  while !written < churn_bytes do
    let size = Dist.sample profile.G.size_dist rng in
    let size = min size (max Units.base_page (capacity / 8)) in
    let guard = ref 0 in
    while
      (util () > target_util
      || float_of_int (statfs ()).Types.free < 1.5 *. float_of_int size)
      && live.n > 0 && !guard < 10_000
    do
      delete_random ();
      incr guard
    done;
    if not (create_one size) then delete_random ()
  done

(* frag mode: age one ext4 instance and report allocator fragmentation,
   to size the O(n) term in the flat extent index. *)
let frag_probe () =
  let device_bytes = 384 * Units.mib * scale in
  let churn_bytes = device_bytes * 48 in
  let dev = Device.create ~size:device_bytes () in
  let stores = ref 0 and store_bytes = ref 0 and loads = ref 0 in
  ignore
    (Device.add_event_hook dev (fun _ _ ev ->
         match ev with
         | Device.Store { len; _ } ->
             incr stores;
             store_bytes := !store_bytes + len
         | Device.Load _ -> incr loads
         | _ -> ()));
  let module E = Repro_baselines.Ext4_dax in
  let fs = E.format dev (Types.config ~cpus:4 ~inodes_per_cpu:8192 ()) in
  let t0 = now () in
  age (Fs_intf.Handle ((module E), fs)) ~churn_bytes ~target_util:0.75;
  Printf.printf
    "aged in %.2fs; free extents %d, largest %d, free %d; stores %d (avg %db) loads %d\n%!"
    (now () -. t0)
    (Repro_alloc.Pool_alloc.free_extent_count fs.Repro_baselines.Basefs.alloc)
    (Repro_alloc.Pool_alloc.largest_free fs.Repro_baselines.Basefs.alloc)
    (E.statfs fs).Types.free !stores
    (!store_bytes / max 1 !stores)
    !loads;
  Printf.printf
    "breakdown: statfs %5.2fs (%d) create %5.2fs (%d) pwrite %5.2fs (%d) fsync %5.2fs \
     close %5.2fs unlink %5.2fs (%d)\n%!"
    !t_statfs !n_statfs !t_create !n_create !t_pwrite !n_pwrite !t_fsync !t_close
    !t_unlink !n_unlink

let () =
  if (try Sys.argv.(2) = "frag" with _ -> false) then begin
    frag_probe ();
    exit 0
  end;
  let device_bytes = 384 * Units.mib * scale in
  let churn_bytes = device_bytes * 48 in
  List.iter
    (fun (f : Registry.factory) ->
      List.iter (fun a -> a := 0.) [ t_statfs; t_create; t_pwrite; t_fsync; t_close; t_unlink ];
      List.iter (fun a -> a := 0) [ n_statfs; n_create; n_pwrite; n_unlink ];
      let dev = Device.create ~size:device_bytes () in
      let h = f.make dev (Types.config ~cpus:4 ~inodes_per_cpu:8192 ()) in
      let t0 = now () in
      let g0 = Gc.quick_stat () in
      start_sampler ();
      age h ~churn_bytes ~target_util:0.75;
      stop_sampler ();
      let g1 = Gc.quick_stat () in
      Printf.printf
        "gc: minor_words %.2e promoted %.2e major_words %.2e minors %d majors %d compactions %d\n"
        (g1.Gc.minor_words -. g0.Gc.minor_words)
        (g1.Gc.promoted_words -. g0.Gc.promoted_words)
        (g1.Gc.major_words -. g0.Gc.major_words)
        (g1.Gc.minor_collections - g0.Gc.minor_collections)
        (g1.Gc.major_collections - g0.Gc.major_collections)
        (g1.Gc.compactions - g0.Gc.compactions);
      let total = now () -. t0 in
      Printf.printf
        "%-14s total %6.2fs | statfs %5.2fs (%d) create %5.2fs (%d) pwrite %5.2fs (%d) \
         fsync %5.2fs close %5.2fs unlink %5.2fs (%d)\n%!"
        f.fs_name total !t_statfs !n_statfs !t_create !n_create !t_pwrite !n_pwrite
        !t_fsync !t_close !t_unlink !n_unlink)
    (match try Sys.argv.(2) with _ -> "both" with
    | "ext4" -> [ Registry.ext4_dax ]
    | "winefs" -> [ Registry.winefs ]
    | "nova" -> [ Registry.nova ]
    | "strata" -> [ Registry.strata ]
    | "splitfs" -> [ Registry.splitfs ]
    | "pmfs" -> [ Registry.pmfs ]
    | _ -> [ Registry.ext4_dax; Registry.winefs ])
