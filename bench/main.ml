(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (simulated time; see DESIGN.md for the per-experiment index)
   plus Bechamel wall-clock microbenchmarks of the substrate hot paths.

   Usage:
     bench/main.exe                 run every experiment at scale 1
     bench/main.exe fig1 fig3       run selected experiments
     bench/main.exe --scale 2 fig6  grow toward paper-scale parameters
     bench/main.exe --json DIR ...  also write BENCH_<name>.json per experiment
     bench/main.exe --json F.json E write one experiment's document to F.json
     bench/main.exe smoke           small end-to-end workload (stats families)
     bench/main.exe bechamel        substrate microbenchmarks (wall time) *)

open Repro_util
module Stats = Repro_stats.Stats
module Json = Repro_stats.Json

type runner = ?scale:int -> unit -> Table.t list

(* A small end-to-end WineFS workload that touches every instrumented
   layer — namespace ops, data journaling and CoW overwrites, allocator
   churn, fsync — so one cheap run populates op latencies, journal and
   allocator counters, and device flush/fence counts.  Backs @bench-smoke. *)
let smoke_run ?(scale = 1) () =
  let dev =
    Repro_pmem.Device.create ~cost:Repro_pmem.Device.Cost.optane ~size:(96 * Units.mib) ()
  in
  let fs = Winefs.Fs.format dev (Repro_vfs.Types.config ~cpus:2 ~inodes_per_cpu:512 ()) in
  let cpu = Cpu.make ~id:0 () in
  Winefs.Fs.mkdir fs cpu "/d";
  let files = 24 * scale in
  for i = 1 to files do
    let p = Printf.sprintf "/d/f%d" i in
    let fd = Winefs.Fs.create fs cpu p in
    ignore (Winefs.Fs.pwrite fs cpu fd ~off:0 ~src:(String.make (8 * Units.kib) 'a'));
    (* Overwrite: exercises the hybrid data-atomicity paths. *)
    ignore (Winefs.Fs.pwrite fs cpu fd ~off:512 ~src:(String.make 4096 'b'));
    ignore (Winefs.Fs.pread fs cpu fd ~off:0 ~len:4096);
    Winefs.Fs.fsync fs cpu fd;
    Winefs.Fs.close fs cpu fd
  done;
  let fd = Winefs.Fs.create fs cpu "/d/big" in
  Winefs.Fs.fallocate fs cpu fd ~off:0 ~len:(8 * Units.mib);
  Winefs.Fs.ftruncate fs cpu fd (2 * Units.mib);
  Winefs.Fs.close fs cpu fd;
  Winefs.Fs.rename fs cpu ~old_path:"/d/f1" ~new_path:"/d/g1";
  Winefs.Fs.unlink fs cpu "/d/g1";
  ignore (Winefs.Fs.readdir fs cpu "/d");
  ignore (Winefs.Fs.stat fs cpu "/d/f2");
  let st = Winefs.Fs.statfs fs in
  let tbl = Table.create ~title:"smoke workload" ~columns:[ "metric"; "value" ] in
  Table.add_row tbl [ "files"; string_of_int files ];
  Table.add_row tbl [ "free_bytes"; string_of_int st.Repro_vfs.Types.free ];
  Table.add_row tbl [ "aligned_free_2m"; string_of_int st.Repro_vfs.Types.aligned_free_2m ];
  Table.add_row tbl [ "simulated_ns"; string_of_int (Simclock.now cpu.clock) ];
  [ tbl ]

let experiments : (string * string * runner) list =
  [
    ("fig1", "aged vs un-aged mmap write bandwidth", Repro_experiments.Fig1_aging_bandwidth.run);
    ("fig2", "2MB mmap+write anatomy; mmap vs syscall", Repro_experiments.Fig2_mmap_overhead.run);
    ("fig3", "free-space fragmentation under aging", Repro_experiments.Fig3_fragmentation.run);
    ("fig4", "TLB/LLC latency CDF, 2MB vs 4KB pages", Repro_experiments.Fig4_tlb_cdf.run);
    ("fig6", "aged read/write throughput (mmap + POSIX)", Repro_experiments.Fig6_throughput.run);
    ("fig7", "aged application throughput + Table 2 faults", Repro_experiments.Fig7_apps_aged.run);
    ("fig8", "P-ART lookup latency CDF", Repro_experiments.Fig8_part_cdf.run);
    ("fig9", "syscall applications (Filebench/pgbench/WiredTiger)", Repro_experiments.Fig9_syscall_apps.run);
    ("fig10", "metadata scalability vs threads", Repro_experiments.Fig10_scalability.run);
    ("table2", "page-fault counts (part of fig7 output)", Repro_experiments.Fig7_apps_aged.run);
    ("sec52", "crash-consistency campaign + recovery time", Repro_experiments.Sec52_crash_recovery.run);
    ("sec4", "defragmentation interference", Repro_experiments.Sec4_defrag_interference.run);
    ("ablations", "design-choice ablations (hugepages, hybrid atomicity, journals, NUMA)",
      Repro_experiments.Ablations.run);
    ("profiles", "aging-profile sensitivity (Agrawal vs Wang-HPC, Sec 4)",
      Repro_experiments.Sec4_profiles.run);
    ("sec57", "DRAM index footprint (Sec 5.7)", Repro_experiments.Sec57_resources.run);
    ("xattr", "alignment xattrs across rsync (Sec 3.6)", Repro_experiments.Sec36_xattr_rsync.run);
    ("smoke", "small end-to-end workload populating every stats family", smoke_run);
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of substrate hot paths (real wall time).   *)

let substrate_tests () =
  let open Bechamel in
  [
    Test.make ~name:"rbtree-insert-1k"
      (Staged.stage (fun () ->
           let t = Repro_rbtree.Rbtree.Int_map.create () in
           for i = 1 to 1000 do
             Repro_rbtree.Rbtree.Int_map.insert t (i * 7919 mod 104729) i
           done));
    Test.make ~name:"extent-first-fit-512"
      (Staged.stage (fun () ->
           let t = Repro_rbtree.Extent_tree.create () in
           Repro_rbtree.Extent_tree.insert_free t ~off:0 ~len:(64 * Units.mib);
           for _ = 1 to 512 do
             ignore (Repro_rbtree.Extent_tree.alloc_first_fit t ~len:Units.base_page)
           done));
    Test.make ~name:"aligned-alloc-churn-256"
      (Staged.stage (fun () ->
           let a =
             Repro_alloc.Aligned_alloc.create ~cpus:2
               ~regions:[| (0, 32 * Units.mib); (32 * Units.mib, 32 * Units.mib) |]
           in
           for i = 1 to 256 do
             match
               Repro_alloc.Aligned_alloc.alloc a ~cpu:(i land 1) ~len:(12 * Units.kib)
                 ~prefer_aligned:false
             with
             | Some exts ->
                 if i land 3 = 0 then
                   List.iter
                     (fun (e : Repro_alloc.Aligned_alloc.extent) ->
                       Repro_alloc.Aligned_alloc.free a ~off:e.off ~len:e.len)
                     exts
             | None -> ()
           done));
    Test.make ~name:"undo-journal-txn-64"
      (Staged.stage (fun () ->
           let dev =
             Repro_pmem.Device.create ~cost:Repro_pmem.Device.Cost.free
               ~size:(4 * Units.mib) ()
           in
           let cpu = Cpu.make ~id:0 () in
           let counter = Repro_journal.Undo_journal.Txn_counter.create () in
           let j =
             Repro_journal.Undo_journal.format dev cpu counter ~off:0 ~entries:256
               ~copy_bytes:(256 * Units.kib)
           in
           for _ = 1 to 64 do
             let txn = Repro_journal.Undo_journal.begin_txn j cpu ~reserve:4 in
             Repro_journal.Undo_journal.log_range j cpu txn ~addr:Units.mib ~len:16;
             Repro_journal.Undo_journal.commit j cpu txn
           done));
    (* Flat substrate vs the structures it replaced: same operation mix on
       the open-addressing table and a stdlib Hashtbl, and on the
       sorted-run extent index and the reference rbtree version. *)
    Test.make ~name:"flat-table-churn-4k"
      (Staged.stage (fun () ->
           let t = Flat_table.create ~capacity:16 ~dummy:0 () in
           for i = 1 to 4096 do
             let k = i * 7919 mod 2048 in
             Flat_table.set t k i;
             if i land 3 = 0 then Flat_table.remove t ((k + 37) mod 2048);
             ignore (Flat_table.get t ((k * 31) mod 2048) ~default:0)
           done));
    Test.make ~name:"hashtbl-churn-4k"
      (Staged.stage (fun () ->
           let t : (int, int) Hashtbl.t = Hashtbl.create 16 in
           for i = 1 to 4096 do
             let k = i * 7919 mod 2048 in
             Hashtbl.replace t k i;
             if i land 3 = 0 then Hashtbl.remove t ((k + 37) mod 2048);
             ignore (Hashtbl.find_opt t ((k * 31) mod 2048))
           done));
    Test.make ~name:"flat-extent-mixed-512"
      (Staged.stage (fun () ->
           let t = Repro_rbtree.Extent_tree.create () in
           Repro_rbtree.Extent_tree.insert_free t ~off:0 ~len:(64 * Units.mib);
           for i = 1 to 512 do
             match Repro_rbtree.Extent_tree.alloc_best_fit t ~len:(Units.base_page * (1 + (i mod 7))) with
             | Some off when i land 3 = 0 ->
                 Repro_rbtree.Extent_tree.insert_free t ~off
                   ~len:(Units.base_page * (1 + (i mod 7)))
             | _ -> ()
           done));
    Test.make ~name:"rbtree-extent-mixed-512"
      (Staged.stage (fun () ->
           let t = Repro_rbtree.Extent_tree_ref.create () in
           Repro_rbtree.Extent_tree_ref.insert_free t ~off:0 ~len:(64 * Units.mib);
           for i = 1 to 512 do
             match
               Repro_rbtree.Extent_tree_ref.alloc_best_fit t
                 ~len:(Units.base_page * (1 + (i mod 7)))
             with
             | Some off when i land 3 = 0 ->
                 Repro_rbtree.Extent_tree_ref.insert_free t ~off
                   ~len:(Units.base_page * (1 + (i mod 7)))
             | _ -> ()
           done));
    Test.make ~name:"device-fence-dirty-1k"
      (Staged.stage (fun () ->
           let dev =
             Repro_pmem.Device.create ~cost:Repro_pmem.Device.Cost.free
               ~size:(4 * Units.mib) ()
           in
           let cpu = Cpu.make ~id:0 () in
           Repro_pmem.Device.set_tracking dev true;
           let cl = Units.cacheline in
           for i = 0 to 999 do
             Repro_pmem.Device.write_string dev cpu ~off:(i * cl) "d"
           done;
           (* Many fences over a large pending set: O(flushed) sweeps. *)
           for f = 0 to 9 do
             Repro_pmem.Device.flush dev cpu ~off:(f * 16 * cl) ~len:(16 * cl);
             Repro_pmem.Device.fence dev cpu
           done));
    Test.make ~name:"lru-sets-access-4k"
      (Staged.stage (fun () ->
           let l = Repro_memsim.Lru_sets.create ~sets:16 ~ways:4 in
           for i = 1 to 4096 do
             ignore (Repro_memsim.Lru_sets.access l (i * 37))
           done));
    Test.make ~name:"winefs-create-write-unlink-32"
      (Staged.stage (fun () ->
           let dev =
             Repro_pmem.Device.create ~cost:Repro_pmem.Device.Cost.free
               ~size:(48 * Units.mib) ()
           in
           let fs =
             Winefs.Fs.format dev (Repro_vfs.Types.config ~cpus:2 ~inodes_per_cpu:256 ())
           in
           let cpu = Cpu.make ~id:0 () in
           for i = 1 to 32 do
             let p = Printf.sprintf "/f%d" i in
             let fd = Winefs.Fs.create fs cpu p in
             ignore (Winefs.Fs.pwrite fs cpu fd ~off:0 ~src:(String.make 4096 'b'));
             Winefs.Fs.close fs cpu fd;
             Winefs.Fs.unlink fs cpu p
           done));
  ]

let bechamel_benches () =
  let open Bechamel in
  let open Toolkit in
  Printf.printf "== Bechamel microbenchmarks (wall time per run) ==\n%!";
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw =
    Benchmark.all cfg
      Instance.[ monotonic_clock ]
      (Test.make_grouped ~name:"substrate" (substrate_tests ()))
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name est acc -> (name, est) :: acc) results [] in
  List.iter
    (fun (name, est) ->
      match Analyze.OLS.estimates est with
      | Some [ t ] -> Printf.printf "  %-40s %12.0f ns/run\n%!" name t
      | _ -> Printf.printf "  %-40s (no estimate)\n%!" name)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Machine-readable output (--json)                                    *)

let table_json t =
  Json.Obj
    [
      ("title", Json.String (Table.title t));
      ("columns", Json.List (List.map (fun c -> Json.String c) (Table.columns t)));
      ( "rows",
        Json.List
          (List.map
             (fun r -> Json.List (List.map (fun c -> Json.String c) r))
             (Table.rows t)) );
    ]

let bench_doc ~figure ~scale ~wall_s tables =
  Json.Obj
    [
      ("schema", Json.String "winefs-bench/1");
      ("figure", Json.String figure);
      ("scale", Json.Int scale);
      ("wall_s", Json.Float wall_s);
      ("tables", Json.List (List.map table_json tables));
      ("stats", Stats.to_json ());
      ("makespan_ns", Json.Int (Stats.Registry.makespan_ns Stats.global));
    ]

let write_file path doc =
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "(wrote %s)\n%!" path

(* ------------------------------------------------------------------ *)

let usage_and_exit () =
  Printf.eprintf
    "usage: main.exe [--scale N] [--json PATH] [EXPERIMENT...]\n\
     \  --scale N     grow workload sizes toward paper scale (positive integer)\n\
     \  --json PATH   PATH ending in .json: write the single selected experiment's\n\
     \                document there; otherwise treat PATH as a directory and write\n\
     \                one BENCH_<name>.json per experiment\n\
     \  experiments: %s\n\
     \  'bechamel' runs the wall-clock substrate microbenchmarks\n"
    (String.concat ", " (List.map (fun (n, _, _) -> n) experiments));
  exit 2

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let scale = ref 1 in
  let json_path = ref None in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--scale" :: n :: rest -> (
        match int_of_string_opt n with
        | Some v when v >= 1 ->
            scale := v;
            parse acc rest
        | _ ->
            Printf.eprintf "main.exe: invalid --scale value %S (expected a positive integer)\n" n;
            usage_and_exit ())
    | [ "--scale" ] ->
        Printf.eprintf "main.exe: --scale requires a value\n";
        usage_and_exit ()
    | "--json" :: p :: rest ->
        json_path := Some p;
        parse acc rest
    | [ "--json" ] ->
        Printf.eprintf "main.exe: --json requires a path\n";
        usage_and_exit ()
    | a :: _ when String.length a > 0 && a.[0] = '-' ->
        Printf.eprintf "main.exe: unknown flag %S\n" a;
        usage_and_exit ()
    | a :: rest -> parse (a :: acc) rest
  in
  let selected = parse [] args in
  let run_bechamel = List.mem "bechamel" selected in
  let selected = List.filter (fun s -> s <> "bechamel") selected in
  let to_run =
    if selected = [] && not run_bechamel then experiments
    else
      List.filter_map
        (fun name ->
          match List.find_opt (fun (n, _, _) -> n = name) experiments with
          | Some e -> Some e
          | None ->
              Printf.eprintf "main.exe: unknown experiment %S (known: %s)\n" name
                (String.concat ", " (List.map (fun (n, _, _) -> n) experiments));
              usage_and_exit ())
        selected
  in
  let json_single =
    match !json_path with
    | Some p when Filename.check_suffix p ".json" ->
        if List.length to_run <> 1 then begin
          Printf.eprintf
            "main.exe: --json %s names a single file; select exactly one experiment\n" p;
          usage_and_exit ()
        end;
        true
    | Some p ->
        if not (Sys.file_exists p) then Unix.mkdir p 0o755
        else if not (Sys.is_directory p) then begin
          Printf.eprintf "main.exe: --json %s exists and is not a directory\n" p;
          usage_and_exit ()
        end;
        false
    | None -> false
  in
  let seen = Hashtbl.create 8 in
  Printf.printf "WineFS reproduction benchmark harness (scale %d)\n" !scale;
  Printf.printf "Simulated-time results; shapes, not absolute numbers, are the target.\n\n%!";
  List.iter
    (fun (name, descr, (run : runner)) ->
      if not (Hashtbl.mem seen descr) then begin
        Hashtbl.replace seen descr ();
        Printf.printf "### %s — %s\n%!" name descr;
        Stats.reset ();
        Stats.set_enabled true;
        let t0 = Unix.gettimeofday () in
        let tables = run ~scale:!scale () in
        let wall_s = Unix.gettimeofday () -. t0 in
        Stats.set_enabled false;
        List.iter Table.print tables;
        Printf.printf "(%s took %.1fs wall)\n\n%!" name wall_s;
        match !json_path with
        | None -> ()
        | Some p ->
            let doc = bench_doc ~figure:name ~scale:!scale ~wall_s tables in
            let path = if json_single then p else Filename.concat p ("BENCH_" ^ name ^ ".json") in
            write_file path doc
      end)
    to_run;
  if run_bechamel || (selected = [] && not run_bechamel) then bechamel_benches ()
