(* Validates a BENCH_*.json artifact from main.exe --json: strict parse,
   then a shape check of everything the harness promises — per-op latency
   percentiles, journal and allocator counters, device flush/fence counts.
   Exit 0 and print "ok" on success; exit 1 with a message otherwise.
   Backs the @bench-smoke alias. *)

module Json = Repro_stats.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* The stats document renders counters/gauges/histograms as lists of
   objects with a "name" member. *)
let instruments doc section =
  match Json.member section doc with
  | Some (Json.List l) ->
      List.filter_map
        (fun item ->
          match Json.member "name" item with Some (Json.String n) -> Some (n, item) | _ -> None)
        l
  | _ -> fail "stats.%s missing or not a list" section

let has_prefix p (name, _) =
  String.length name >= String.length p && String.sub name 0 (String.length p) = p

let () =
  if Array.length Sys.argv <> 2 then fail "usage: validate_json.exe BENCH.json";
  let path = Sys.argv.(1) in
  let doc =
    match Json.of_string (read_file path) with
    | Ok d -> d
    | Error e -> fail "%s: invalid JSON: %s" path e
  in
  (match Json.member "schema" doc with
  | Some (Json.String "winefs-bench/1") -> ()
  | _ -> fail "%s: missing or unexpected schema" path);
  (match Json.member "figure" doc with
  | Some (Json.String _) -> ()
  | _ -> fail "%s: missing figure" path);
  (match Option.bind (Json.member "scale" doc) Json.to_int with
  | Some s when s >= 1 -> ()
  | _ -> fail "%s: missing or non-positive scale" path);
  (match Json.member "tables" doc with
  | Some (Json.List (_ :: _)) -> ()
  | _ -> fail "%s: missing or empty tables" path);
  (match Option.bind (Json.member "makespan_ns" doc) Json.to_int with
  | Some m when m > 0 -> ()
  | _ -> fail "%s: missing or zero makespan_ns" path);
  let stats = match Json.member "stats" doc with Some s -> s | None -> fail "%s: missing stats" path in
  let counters = instruments stats "counters" in
  let gauges = instruments stats "gauges" in
  let hists = instruments stats "histograms" in
  if not (List.exists (has_prefix "journal.") counters) then
    fail "%s: no journal.* counters" path;
  if not (List.exists (has_prefix "alloc.") (counters @ gauges)) then
    fail "%s: no alloc.* instruments" path;
  if not (List.exists (has_prefix "pm.fences") counters) then fail "%s: no pm.fences counter" path;
  if not (List.exists (has_prefix "pm.flush") counters) then fail "%s: no pm.flush counter" path;
  if not (List.exists (has_prefix "op.latency_ns") hists) then
    fail "%s: no per-op latency histograms" path;
  List.iter
    (fun (name, h) ->
      List.iter
        (fun field ->
          match Option.bind (Json.member field h) Json.to_int with
          | Some _ -> ()
          | None -> fail "%s: histogram %S lacks %s" path name field)
        [ "count"; "p50"; "p90"; "p99"; "p999" ])
    hists;
  print_endline "ok"
