(* @perf-smoke: operation-count budgets for the flat substrate.

   Wall-clock assertions flake under CI load, so the perf regressions
   this guards are expressed as deterministic operation counts instead:
   hash-probe work per table operation and pending-entries visited per
   fence.  A regression that reintroduces O(all-pending) fence sweeps or
   degenerate probe chains fails these budgets on any machine, loaded or
   not. *)

open Repro_util
module Device = Repro_pmem.Device

let failures = ref 0

let budget name ~actual ~limit =
  if actual > limit then begin
    Printf.printf "FAIL %-32s %d > budget %d\n" name actual limit;
    incr failures
  end
  else Printf.printf "ok   %-32s %d <= %d\n" name actual limit

let table_probe_budget () =
  (* 10k inserts + 10k hits + 10k misses on a well-spread key set: the
     3/4 load-factor cap keeps expected probes per operation small; 4x
     is far above healthy linear probing and far below a degenerate
     chain. *)
  let n = 10_000 in
  let t = Flat_table.create ~capacity:16 ~dummy:0 () in
  for i = 0 to n - 1 do
    Flat_table.set t (i * 2) i
  done;
  for i = 0 to n - 1 do
    ignore (Flat_table.get t (i * 2) ~default:(-1));
    ignore (Flat_table.mem t ((i * 2) + 1))
  done;
  budget "flat_table probes / 30k ops" ~actual:(Flat_table.probe_steps t) ~limit:(4 * 3 * n)

let table_tombstone_budget () =
  (* Delete-heavy churn in a fixed key range: tombstone rehashing must
     keep probe chains short instead of letting them creep toward a full
     scan per lookup. *)
  let t = Flat_table.create ~capacity:16 ~dummy:0 () in
  let range = 512 in
  for i = 0 to range - 1 do
    Flat_table.set t i i
  done;
  let p0 = Flat_table.probe_steps t in
  let rounds = 200 in
  for r = 1 to rounds do
    for i = 0 to range - 1 do
      Flat_table.remove t i;
      Flat_table.set t i (i + r)
    done
  done;
  let per_op = (Flat_table.probe_steps t - p0) / (rounds * range * 2) in
  budget "flat_table churn probes / op" ~actual:per_op ~limit:6

let fence_sweep_budget () =
  (* 10k dirty lines, 100 flushed: the fence may visit only what was
     flushed (+ small constant), never the whole pending set. *)
  let dev = Device.create ~cost:Device.Cost.free ~size:(4 * Units.mib) () in
  let cpu = Cpu.make ~id:0 () in
  Device.set_tracking dev true;
  let cl = Units.cacheline in
  let dirty = 10_000 and flushed = 100 in
  for i = 0 to dirty - 1 do
    Device.write_string dev cpu ~off:(i * cl) "d"
  done;
  Device.flush dev cpu ~off:0 ~len:(flushed * cl);
  let v0 = Device.fence_sweep_visits dev in
  Device.fence dev cpu;
  budget "fence sweep visits (100 flushed)" ~actual:(Device.fence_sweep_visits dev - v0)
    ~limit:flushed;
  (* Ten no-progress fences over the still-pending 9.9k lines: a sweep
     proportional to pending would show up as ~99k visits here. *)
  let v1 = Device.fence_sweep_visits dev in
  for _ = 1 to 10 do
    Device.fence dev cpu
  done;
  budget "fence sweep visits (10 empty fences)" ~actual:(Device.fence_sweep_visits dev - v1)
    ~limit:0

let () =
  table_probe_budget ();
  table_tombstone_budget ();
  fence_sweep_budget ();
  if !failures > 0 then begin
    Printf.printf "%d perf budget(s) exceeded\n" !failures;
    exit 1
  end
