(* pmcheck — persistence-ordering lint over the simulated PM device.

   Runs the ACE workload corpus (and a micro-workload suite) against
   WineFS with the durability sanitizer attached, and reports every
   flush/fence-ordering violation with the site that caused it.

   Examples:
     pmcheck                     # all ACE workloads + micro suite, report
     pmcheck --seq 2             # only two-op ACE sequences
     pmcheck --strict            # exit at the first violation
     pmcheck --rules R1,R4       # check a subset of the rules *)

open Cmdliner
module Ace = Repro_crashcheck.Ace
module Sanitize = Repro_crashcheck.Sanitize
module Sanitizer = Sanitize.Sanitizer
module Table = Repro_util.Table

let parse_rules s =
  let name_of = function
    | "R1" -> Some Sanitizer.R1_missing_flush
    | "R2" -> Some Sanitizer.R2_missing_fence
    | "R3" -> Some Sanitizer.R3_redundant_flush
    | "R4" -> Some Sanitizer.R4_undo_protocol
    | "R5" -> Some Sanitizer.R5_commit_order
    | _ -> None
  in
  String.split_on_char ',' s
  |> List.map (fun r ->
         match name_of (String.trim r) with
         | Some rule -> rule
         | None ->
             Printf.eprintf "unknown rule %S (expected R1..R5)\n" r;
             exit 2)

let run seq strict no_micro relaxed rules verbose =
  let rules = match rules with "" -> Sanitizer.all_rules | s -> parse_rules s in
  let workloads =
    match seq with
    | 0 -> Ace.all
    | 1 -> Ace.seq1
    | 2 -> Ace.seq2
    | 3 -> Ace.seq3
    | n ->
        Printf.eprintf "--seq must be 1, 2, 3, or 0 for all (got %d)\n" n;
        exit 2
  in
  let mode = if relaxed then Repro_vfs.Types.Relaxed else Repro_vfs.Types.Strict in
  Printf.printf "pmcheck: %d ACE workloads%s, %s mode%s\n%!" (List.length workloads)
    (if no_micro then "" else " + micro suite")
    (if relaxed then "relaxed" else "strict")
    (if strict then ", stopping at the first violation" else "");
  match
    let ace = Sanitize.run_ace ~strict ~rules ~mode workloads in
    let micro = if no_micro then [] else Sanitize.run_micro ~strict ~rules () in
    ace @ micro
  with
  | exception Sanitizer.Violation d ->
      Printf.printf "VIOLATION: %s\n" (Sanitizer.diag_to_string d);
      1
  | reports ->
      let table =
        Table.create ~title:"Durability violations"
          ~columns:[ "workload"; "rule"; "severity"; "site"; "cacheline"; "count"; "detail" ]
      in
      let rows = ref 0 in
      List.iter
        (fun (r : Sanitize.report) ->
          List.iter
            (fun (d : Sanitizer.diag) ->
              incr rows;
              Table.add_row table
                [
                  r.name;
                  Sanitizer.rule_name d.rule;
                  (match d.severity with Sanitizer.Error -> "error" | Warning -> "warning");
                  Repro_pmem.Site.to_string d.site;
                  Printf.sprintf "%d (0x%x)" d.line (Sanitizer.diag_offset d);
                  string_of_int d.count;
                  d.detail;
                ])
            r.diags)
        reports;
      if verbose then
        List.iter
          (fun (r : Sanitize.report) ->
            Printf.printf "  %-28s %s\n" r.name
              (if r.diags = [] then "clean"
               else Printf.sprintf "%d diagnostic(s)" (List.length r.diags)))
          reports;
      if !rows > 0 then Table.print table;
      let errors = Sanitize.total_errors reports in
      Printf.printf "\npmcheck: %d workloads, %d diagnostics (%d errors)\n"
        (List.length reports) !rows errors;
      if errors = 0 then begin
        print_endline "No persistence-ordering violations.";
        0
      end
      else 1

let () =
  let seq = Arg.(value & opt int 0 & info [ "seq" ] ~doc:"ACE workload length (1-3; 0 = all)") in
  let strict =
    Arg.(value & flag & info [ "strict" ] ~doc:"Raise at the first violating access")
  in
  let no_micro = Arg.(value & flag & info [ "no-micro" ] ~doc:"Skip the micro-workload suite") in
  let relaxed =
    Arg.(value & flag & info [ "relaxed" ] ~doc:"Run the file system in relaxed mode")
  in
  let rules =
    Arg.(value & opt string "" & info [ "rules" ] ~doc:"Comma-separated rule subset (R1..R5)")
  in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print each workload") in
  let cmd =
    Cmd.v
      (Cmd.info "pmcheck" ~doc:"Persistence-ordering lint for the WineFS PM stack")
      Term.(const run $ seq $ strict $ no_micro $ relaxed $ rules $ verbose)
  in
  exit (Cmd.eval' cmd)
