(* pmcheck — concurrency + persistence checkers over the simulated PM stack.

   The default command is the persistence-ordering lint: it runs the ACE
   workload corpus (and a micro-workload suite) against WineFS with the
   durability sanitizer attached, and reports every flush/fence-ordering
   violation with the site that caused it.

   `pmcheck racecheck` runs the data-race detector over the concurrency
   scenario suite, exploring seeded thread schedules.

   `pmcheck faultcheck` runs the media-fault campaign: seeded bit flips,
   poisoned lines and torn words planted in WineFS images, verifying each
   one is repaired or safely refused — never silently absorbed.

   `pmcheck srccheck` runs the AST-based static analyzer over this
   repository's own sources (all six rules), plus a dynamic probe that
   replays the scenario suite and cross-checks the observed lock order
   against the static graph.

   `pmcheck flowcheck` runs just the two flow-sensitive dataflow rules
   (persist-order, determinism), plus the flow containment probe that
   replays the paired crash-consistency scenarios and requires the
   static analysis to subsume everything the dynamic sanitizer catches.

   Examples:
     pmcheck                       # all ACE workloads + micro suite, report
     pmcheck --seq 2               # only two-op ACE sequences
     pmcheck --strict              # exit at the first violation
     pmcheck --rules R1,R4        # check a subset of the rules
     pmcheck racecheck             # explore 50 schedules per scenario
     pmcheck racecheck --seed 7    # replay the single schedule seed 7 picks
     pmcheck faultcheck            # fault campaign over the ACE seq-1 corpus
     pmcheck faultcheck --seed 9   # replay the campaign seed 9 determines
     pmcheck srccheck lib bin      # static rules + dynamic lock-order probe
     pmcheck flowcheck --format=json   # dataflow rules, machine-readable *)

open Cmdliner
module Ace = Repro_crashcheck.Ace
module Faultcheck = Repro_crashcheck.Faultcheck
module Torturecheck = Repro_crashcheck.Torturecheck
module Fsck_scenarios = Repro_fsck.Fsck_scenarios
module Sanitize = Repro_crashcheck.Sanitize
module Sanitizer = Sanitize.Sanitizer
module Race = Repro_race.Race
module Scenarios = Repro_race.Scenarios
module Sched = Repro_sched.Sched
module Table = Repro_util.Table
module Lint = Repro_lint.Lint
module Lint_source = Repro_lint.Source
module Lint_diag = Repro_lint.Diag
module Probe = Repro_lint.Probe

let parse_rules s =
  let name_of = function
    | "R1" -> Some Sanitizer.R1_missing_flush
    | "R2" -> Some Sanitizer.R2_missing_fence
    | "R3" -> Some Sanitizer.R3_redundant_flush
    | "R4" -> Some Sanitizer.R4_undo_protocol
    | "R5" -> Some Sanitizer.R5_commit_order
    | _ -> None
  in
  String.split_on_char ',' s
  |> List.map (fun r ->
         match name_of (String.trim r) with
         | Some rule -> rule
         | None ->
             Printf.eprintf "unknown rule %S (expected R1..R5)\n" r;
             exit 2)

let run_lint seq strict no_micro relaxed rules verbose =
  let rules = match rules with "" -> Sanitizer.all_rules | s -> parse_rules s in
  let workloads =
    match seq with
    | 0 -> Ace.all
    | 1 -> Ace.seq1
    | 2 -> Ace.seq2
    | 3 -> Ace.seq3
    | n ->
        Printf.eprintf "--seq must be 1, 2, 3, or 0 for all (got %d)\n" n;
        exit 2
  in
  let mode = if relaxed then Repro_vfs.Types.Relaxed else Repro_vfs.Types.Strict in
  Printf.printf "pmcheck: %d ACE workloads%s, %s mode%s\n%!" (List.length workloads)
    (if no_micro then "" else " + micro suite")
    (if relaxed then "relaxed" else "strict")
    (if strict then ", stopping at the first violation" else "");
  match
    let ace = Sanitize.run_ace ~strict ~rules ~mode workloads in
    let micro = if no_micro then [] else Sanitize.run_micro ~strict ~rules () in
    ace @ micro
  with
  | exception Sanitizer.Violation d ->
      Printf.printf "VIOLATION: %s\n" (Sanitizer.diag_to_string d);
      1
  | reports ->
      let table =
        Table.create ~title:"Durability violations"
          ~columns:[ "workload"; "rule"; "severity"; "site"; "cacheline"; "count"; "detail" ]
      in
      let rows = ref 0 in
      List.iter
        (fun (r : Sanitize.report) ->
          List.iter
            (fun (d : Sanitizer.diag) ->
              incr rows;
              Table.add_row table
                [
                  r.name;
                  Sanitizer.rule_name d.rule;
                  (match d.severity with Sanitizer.Error -> "error" | Warning -> "warning");
                  Repro_pmem.Site.to_string d.site;
                  Printf.sprintf "%d (0x%x)" d.line (Sanitizer.diag_offset d);
                  string_of_int d.count;
                  d.detail;
                ])
            r.diags)
        reports;
      if verbose then
        List.iter
          (fun (r : Sanitize.report) ->
            Printf.printf "  %-28s %s\n" r.name
              (if r.diags = [] then "clean"
               else Printf.sprintf "%d diagnostic(s)" (List.length r.diags)))
          reports;
      if !rows > 0 then Table.print table;
      let errors = Sanitize.total_errors reports in
      Printf.printf "\npmcheck: %d workloads, %d diagnostics (%d errors)\n"
        (List.length reports) !rows errors;
      if errors = 0 then begin
        print_endline "No persistence-ordering violations.";
        0
      end
      else 1

(* racecheck: run every scenario under the detector.  Clean scenarios must
   stay silent across all explored schedules; planted-bug scenarios must
   be flagged.  Exit 0 only when both hold, so the runtest alias catches a
   detector that goes blind as loudly as a discipline regression. *)
let run_racecheck schedules base_seed replay_seed scenario_filter verbose =
  let scenarios =
    match scenario_filter with
    | "" -> Scenarios.all
    | name -> (
        match Scenarios.find name with
        | Some s -> [ s ]
        | None ->
            Printf.eprintf "unknown scenario %S (have: %s)\n" name
              (String.concat ", " (List.map (fun s -> s.Race.sc_name) Scenarios.all));
            exit 2)
  in
  let expect_racy s = List.exists (fun r -> r.Race.sc_name = s.Race.sc_name) Scenarios.racy in
  (match replay_seed with
  | Some s -> Printf.printf "pmcheck racecheck: replaying schedule seed %d\n%!" s
  | None ->
      Printf.printf "pmcheck racecheck: %d scenarios x %d schedules (base seed %d)\n%!"
        (List.length scenarios) schedules base_seed);
  Sched.Lock_order.reset ();
  let failures = ref 0 in
  List.iter
    (fun sc ->
      let races, explored =
        match replay_seed with
        | Some seed -> (Race.check ~seed sc, 1)
        | None ->
            let o = Race.explore ~schedules ~seed:base_seed sc in
            (o.o_races, o.o_schedules)
      in
      let racy = expect_racy sc in
      let ok = if racy then races <> [] else races = [] in
      if not ok then incr failures;
      Printf.printf "  %-16s %-8s %d race(s) over %d schedule(s)%s\n" sc.Race.sc_name
        (if racy then "[racy]" else "[clean]")
        (List.length races) explored
        (if ok then "" else "  <-- UNEXPECTED");
      if verbose || not ok then
        List.iter (fun r -> Printf.printf "      %s\n" (Race.race_to_string r)) races)
    scenarios;
  (* The recorder accumulated every acquisition across all explored
     schedules; a cycle in that union is a potential ABBA deadlock even
     though no single schedule deadlocked. *)
  (match Sched.Lock_order.cycle () with
  | Some labels ->
      incr failures;
      Printf.printf "  lock-order: observed acquired-before cycle {%s}  <-- UNEXPECTED\n"
        (String.concat ", " labels)
  | None ->
      Printf.printf "  lock-order: %d acquisition(s), %d distinct edge(s), acyclic\n"
        (Sched.Lock_order.acquisitions ())
        (List.length (Sched.Lock_order.edges ())));
  if !failures = 0 then begin
    print_endline "racecheck: all scenarios behaved as expected.";
    0
  end
  else begin
    Printf.printf "racecheck: %d check(s) misbehaved.\n" !failures;
    1
  end

(* Shared by srccheck/flowcheck: the --format=json payload is the lint
   report plus whichever probe ran, one self-describing object on stdout
   (the exit code still carries the verdict). *)
let check_format = function
  | "human" | "json" -> ()
  | f ->
      Printf.eprintf "--format must be human or json (got %s)\n" f;
      exit 2

let print_json report ~probe_fields ~probe_diags =
  let open Repro_stats.Json in
  let base = match Lint.report_to_json report with Obj fields -> fields | j -> [ ("report", j) ] in
  let fields =
    base @ probe_fields @ [ ("probe_diags", List (List.map Lint_diag.to_json probe_diags)) ]
  in
  print_endline (to_string ~indent:true (Obj fields))

(* srccheck: all six AST rules over the repo's own sources, then the
   dynamic probe (scenario suite + a small basefs workload under the
   lock-order recorder) cross-checking static ⊇ observed.  Exit 0 clean,
   1 on violations, 2 when a source file does not even parse. *)
let run_srccheck roots no_probe format verbose =
  check_format format;
  let json = format = "json" in
  let roots = match roots with [] -> [ "lib"; "bin" ] | r -> r in
  let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
  if missing <> [] then begin
    Printf.eprintf "srccheck: no such file or directory: %s\n" (String.concat ", " missing);
    exit 2
  end;
  let files, parse = Lint_source.load_roots roots in
  let report = Lint.run files ~parse in
  if not json then begin
    Printf.printf "pmcheck srccheck: %d files under %s, rules: %s\n%!" report.Lint.files_scanned
      (String.concat " " roots)
      (String.concat ", " (List.map fst Lint.rules));
    List.iter (fun d -> print_endline ("  " ^ Lint_diag.to_string d)) report.Lint.diags
  end;
  let probe = if no_probe then None else Some (Probe.run files) in
  let probe_diags = match probe with None -> [] | Some p -> p.Probe.diags in
  if json then
    let open Repro_stats.Json in
    let probe_fields =
      match probe with
      | None -> [ ("probe", String "skipped") ]
      | Some p ->
          [
            ( "probe",
              Obj
                [
                  ("acquisitions", Int p.Probe.acquisitions);
                  ("named_edges", Int (List.length p.Probe.observed_edges));
                  ("cyclic", Bool (p.Probe.runtime_cycle <> None));
                ] );
          ]
    in
    print_json report ~probe_fields ~probe_diags
  else begin
    let probe_note =
      match probe with
      | None -> "skipped"
      | Some p ->
          Printf.sprintf "%d acquisition(s), %d named edge(s), %s" p.Probe.acquisitions
            (List.length p.Probe.observed_edges)
            (match p.Probe.runtime_cycle with Some _ -> "CYCLIC" | None -> "acyclic")
    in
    List.iter (fun d -> print_endline ("  " ^ Lint_diag.to_string d)) probe_diags;
    if verbose then
      List.iter
        (fun (rule, checker) ->
          Printf.printf "  %-16s %d diagnostic(s)\n" rule
            (List.length (List.filter (fun d -> d.Lint_diag.rule = rule) report.Lint.diags));
          ignore checker)
        Lint.rules;
    Printf.printf "srccheck: %d diagnostic(s), %d suppressed, dynamic probe: %s\n"
      (List.length report.Lint.diags + List.length probe_diags)
      report.Lint.suppressed probe_note
  end;
  let total = List.length report.Lint.diags + List.length probe_diags in
  if report.Lint.parse_errors > 0 then 2
  else if total > 0 then 1
  else begin
    if not json then
      print_endline "No layering, lock-order, persist-site or error-discipline violations.";
    0
  end

(* flowcheck: the two flow-sensitive dataflow rules (persist-order,
   determinism) over the repo's own sources, plus the containment probe
   replaying the paired crash-consistency scenarios — every dynamic
   sanitizer error must be statically subsumed, and the planted
   branch-only bug must stay dynamically invisible but statically
   caught.  Exit 0 clean, 1 on violations, 2 on parse errors. *)
let run_flowcheck roots no_probe format verbose =
  check_format format;
  let json = format = "json" in
  let roots = match roots with [] -> [ "lib"; "bin" ] | r -> r in
  let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
  if missing <> [] then begin
    Printf.eprintf "flowcheck: no such file or directory: %s\n" (String.concat ", " missing);
    exit 2
  end;
  let files, parse = Lint_source.load_roots roots in
  let report = Lint.run ~only:Lint.flow_rules files ~parse in
  let flow = if no_probe then None else Some (Probe.run_flow ()) in
  let probe_diags = match flow with None -> [] | Some f -> f.Probe.flow_diags in
  if json then
    let open Repro_stats.Json in
    let probe_fields =
      match flow with
      | None -> [ ("probe", String "skipped") ]
      | Some f ->
          [
            ( "probe",
              List
                (List.map
                   (fun (name, st, dyn) ->
                     Obj
                       [
                         ("scenario", String name);
                         ("static_flagged", Bool st);
                         ("dynamic_error", Bool dyn);
                       ])
                   f.Probe.flow_scenarios) );
          ]
    in
    print_json report ~probe_fields ~probe_diags
  else begin
    Printf.printf "pmcheck flowcheck: %d files under %s, rules: %s\n%!" report.Lint.files_scanned
      (String.concat " " roots)
      (String.concat ", " Lint.flow_rules);
    List.iter (fun d -> print_endline ("  " ^ Lint_diag.to_string d)) report.Lint.diags;
    (match flow with
    | None -> print_endline "containment probe: skipped"
    | Some f ->
        if verbose || f.Probe.flow_diags <> [] then
          List.iter
            (fun (name, st, dyn) ->
              Printf.printf "  scenario %-24s static=%-5b dynamic=%b\n" name st dyn)
            f.Probe.flow_scenarios;
        List.iter (fun d -> print_endline ("  " ^ Lint_diag.to_string d)) f.Probe.flow_diags;
        Printf.printf "containment probe: %d scenario(s), static ⊇ dynamic %s\n"
          (List.length f.Probe.flow_scenarios)
          (if f.Probe.flow_diags = [] then "holds" else "VIOLATED"));
    Printf.printf "flowcheck: %d diagnostic(s), %d suppressed\n"
      (List.length report.Lint.diags + List.length probe_diags)
      report.Lint.suppressed
  end;
  let total = List.length report.Lint.diags + List.length probe_diags in
  if report.Lint.parse_errors > 0 then 2
  else if total > 0 then 1
  else begin
    if not json then print_endline "No persist-order or determinism violations.";
    0
  end

(* faultcheck: plant seeded media faults and verify each is repaired or
   safely refused.  Exit 0 clean, 1 when any fault was silently absorbed
   or mishandled, 2 on usage errors — so the runtest alias treats a lost
   detection exactly like a failing test. *)
let run_faultcheck seed seq torn_fences verbose =
  let workloads =
    match seq with
    | 0 -> Ace.all
    | 1 -> Ace.seq1
    | 2 -> Ace.seq2
    | 3 -> Ace.seq3
    | n ->
        Printf.eprintf "--seq must be 1, 2, 3, or 0 for all (got %d)\n" n;
        exit 2
  in
  if torn_fences < 0 then begin
    Printf.eprintf "--torn-fences must be non-negative (got %d)\n" torn_fences;
    exit 2
  end;
  Printf.printf "pmcheck faultcheck: %d workloads, torn crashes at %d fences (seed %d)\n%!"
    (List.length workloads) torn_fences seed;
  let r = Faultcheck.run ~seed ~workloads ~torn_fences () in
  if verbose || r.findings <> [] then
    List.iter
      (fun (f : Faultcheck.finding) ->
        Printf.printf "  FINDING %s/%s: %s\n      %s\n" f.f_workload f.f_scenario f.f_fault
          f.f_diagnosis)
      r.findings;
  Printf.printf
    "faultcheck: %d scenarios, %d faults planted, %d repaired, %d refused, %d finding(s) \
     (seed %d)\n"
    r.scenarios_run r.faults_planted r.repaired r.refused
    (List.length r.findings) r.seed;
  if r.findings = [] then begin
    Printf.printf "Every planted fault was repaired or safely refused (replay: --seed %d).\n"
      r.seed;
    0
  end
  else begin
    Printf.printf "Silent or mishandled faults detected (replay: --seed %d).\n" r.seed;
    1
  end

(* fsckcheck: the planted-corruption scenario suite for winefs_fsck —
   each scenario damages an image in a precisely-known way, runs fsck
   and demands the exact intended repair, convergence and a writable
   remount.  Exit 0 clean, 1 on any misbehaving scenario. *)
let run_fsckcheck format =
  check_format format;
  let outcomes = Fsck_scenarios.run () in
  let bad = List.filter (fun o -> not o.Fsck_scenarios.ok) outcomes in
  if format = "json" then
    let open Repro_stats.Json in
    print_endline
      (to_string ~indent:true
         (Obj
            [
              ("scenarios", Int (List.length outcomes));
              ("failures", Int (List.length bad));
              ( "outcomes",
                List
                  (List.map
                     (fun (o : Fsck_scenarios.outcome) ->
                       Obj
                         [
                           ("scenario", String o.s_name);
                           ("ok", Bool o.ok);
                           ("detail", String o.detail);
                         ])
                     outcomes) );
            ]))
  else begin
    Printf.printf "pmcheck fsckcheck: %d planted-corruption scenarios\n%!"
      (List.length outcomes);
    List.iter
      (fun (o : Fsck_scenarios.outcome) ->
        Printf.printf "  %-18s %s  %s\n" o.s_name (if o.ok then "ok" else "FAIL") o.detail)
      outcomes;
    if bad = [] then print_endline "Every planted corruption was repaired as intended."
  end;
  if bad = [] then 0 else 1

(* torturecheck: the seeded crash-fsck-remount campaign.  Exit 0 when
   every iteration ends in a writable invariant-clean remount, 1
   otherwise, 2 on usage errors. *)
let run_torturecheck seed iterations fault_rate format verbose =
  check_format format;
  if iterations < 1 then begin
    Printf.eprintf "--iterations must be positive (got %d)\n" iterations;
    exit 2
  end;
  if fault_rate < 0.0 || fault_rate > 1.0 then begin
    Printf.eprintf "--fault-rate must be in [0,1] (got %g)\n" fault_rate;
    exit 2
  end;
  if format <> "json" then
    Printf.printf "pmcheck torturecheck: %d crash+fsck+remount iterations (seed %d)\n%!"
      iterations seed;
  let r = Torturecheck.run ~seed ~iterations ~fault_rate () in
  if format = "json" then
    let open Repro_stats.Json in
    print_endline
      (to_string ~indent:true
         (Obj
            [
              ("seed", Int r.Torturecheck.seed);
              ("iterations", Int r.iterations);
              ("workloads", Int r.workloads);
              ("crashes", Int r.crashes);
              ("faults_planted", Int r.faults_planted);
              ("repairs", Int r.repairs);
              ("orphans_reattached", Int r.orphans);
              ( "failures",
                List
                  (List.map
                     (fun (f : Torturecheck.failure) ->
                       Obj
                         [
                           ("iteration", Int f.t_iter);
                           ("workload", String f.t_workload);
                           ("fence", Int f.t_fence);
                           ("diagnosis", String f.t_diagnosis);
                         ])
                     r.failures) );
            ]))
  else begin
    if verbose || r.failures <> [] then
      List.iter
        (fun (f : Torturecheck.failure) ->
          Printf.printf "  FAILURE it %d %s fence %d: %s\n" f.t_iter f.t_workload f.t_fence
            f.t_diagnosis)
        r.failures;
    Printf.printf
      "torturecheck: %d iterations over %d workloads, %d crashes, %d faults planted, %d \
       repairs, %d orphans reattached, %d failure(s) (seed %d)\n"
      r.iterations r.workloads r.crashes r.faults_planted r.repairs r.orphans
      (List.length r.failures) r.seed;
    if r.failures = [] then
      Printf.printf
        "Every crash image repaired to a writable, invariant-clean mount (replay: --seed %d).\n"
        r.seed
    else Printf.printf "Unhealable crash images detected (replay: --seed %d).\n" r.seed
  end;
  if r.failures = [] then 0 else 1

let lint_term =
  let seq = Arg.(value & opt int 0 & info [ "seq" ] ~doc:"ACE workload length (1-3; 0 = all)") in
  let strict =
    Arg.(value & flag & info [ "strict" ] ~doc:"Raise at the first violating access")
  in
  let no_micro = Arg.(value & flag & info [ "no-micro" ] ~doc:"Skip the micro-workload suite") in
  let relaxed =
    Arg.(value & flag & info [ "relaxed" ] ~doc:"Run the file system in relaxed mode")
  in
  let rules =
    Arg.(value & opt string "" & info [ "rules" ] ~doc:"Comma-separated rule subset (R1..R5)")
  in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print each workload") in
  Term.(const run_lint $ seq $ strict $ no_micro $ relaxed $ rules $ verbose)

let racecheck_cmd =
  let schedules =
    Arg.(value & opt int 50 & info [ "schedules" ] ~doc:"Seeded schedules to explore per scenario")
  in
  let base_seed =
    Arg.(value & opt int 42 & info [ "base-seed" ] ~doc:"Seed deriving the explored schedules")
  in
  let replay_seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~doc:"Replay the single schedule this seed determines")
  in
  let scenario =
    Arg.(value & opt string "" & info [ "scenario" ] ~doc:"Run only the named scenario")
  in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print every reported race") in
  Cmd.v
    (Cmd.info "racecheck" ~doc:"Data-race detector over the concurrency scenario suite")
    Term.(const run_racecheck $ schedules $ base_seed $ replay_seed $ scenario $ verbose)

let faultcheck_cmd =
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Campaign seed (printed in every report)")
  in
  let seq =
    Arg.(value & opt int 1 & info [ "seq" ] ~doc:"ACE workload length (1-3; 0 = all)")
  in
  let torn_fences =
    Arg.(
      value
      & opt int 4
      & info [ "torn-fences" ] ~doc:"Torn-word crash points per workload (0 disables)")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print every finding, even when clean")
  in
  Cmd.v
    (Cmd.info "faultcheck"
       ~doc:"Media-fault campaign: verify faults are repaired or safely refused")
    Term.(const run_faultcheck $ seed $ seq $ torn_fences $ verbose)

let fsckcheck_cmd =
  let format =
    Arg.(value & opt string "human" & info [ "format" ] ~doc:"Output format: human or json")
  in
  Cmd.v
    (Cmd.info "fsckcheck"
       ~doc:"Planted-corruption scenarios: fsck must repair each exactly as intended")
    Term.(const run_fsckcheck $ format)

let torturecheck_cmd =
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Campaign seed (printed in every report)")
  in
  let iterations =
    Arg.(value & opt int 60 & info [ "iterations" ] ~doc:"Crash+fsck+remount iterations")
  in
  let fault_rate =
    Arg.(
      value
      & opt float 0.5
      & info [ "fault-rate" ] ~doc:"Fraction of crash images that also get a media fault")
  in
  let format =
    Arg.(value & opt string "human" & info [ "format" ] ~doc:"Output format: human or json")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print every failure, even when clean")
  in
  Cmd.v
    (Cmd.info "torturecheck"
       ~doc:"Crash-fsck-remount torture campaign: every wreck must repair to writable")
    Term.(const run_torturecheck $ seed $ iterations $ fault_rate $ format $ verbose)

let roots_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"ROOT" ~doc:"Source roots (default lib bin)")

let format_arg =
  Arg.(value & opt string "human" & info [ "format" ] ~doc:"Output format: human or json")

let srccheck_cmd =
  let no_probe =
    Arg.(
      value & flag
      & info [ "no-probe" ] ~doc:"Skip the dynamic lock-order probe (static rules only)")
  in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Per-rule diagnostic counts") in
  Cmd.v
    (Cmd.info "srccheck" ~doc:"AST-based static analysis of the repository's own sources")
    Term.(const run_srccheck $ roots_arg $ no_probe $ format_arg $ verbose)

let flowcheck_cmd =
  let no_probe =
    Arg.(
      value & flag
      & info [ "no-probe" ] ~doc:"Skip the flow containment probe (static rules only)")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print every probe scenario outcome")
  in
  Cmd.v
    (Cmd.info "flowcheck"
       ~doc:"Flow-sensitive persist-order and determinism dataflow over the sources")
    Term.(const run_flowcheck $ roots_arg $ no_probe $ format_arg $ verbose)

let () =
  let info = Cmd.info "pmcheck" ~doc:"Concurrency and persistence checkers for the WineFS PM stack" in
  exit
    (Cmd.eval'
       (Cmd.group ~default:lint_term info
          [ racecheck_cmd; faultcheck_cmd; fsckcheck_cmd; torturecheck_cmd; srccheck_cmd;
            flowcheck_cmd ]))
