(* srccheck — standalone entry point for the AST-based source analyzer.

   Same checks as `pmcheck srccheck`: parse every .ml/.mli under the
   given roots (default lib bin) with compiler-libs, run the six rules
   (lock-order, persist-site, ownership, error-discipline, persist-order,
   determinism), then the dynamic probe that replays the concurrency
   scenarios under the scheduler's lock-order recorder and requires the
   static graph to contain everything observed.

   `--format=json` prints one self-describing object instead of the
   human report; the exit code still carries the verdict.

   Exit codes: 0 clean, 1 violations, 2 parse/usage errors. *)

module Lint = Repro_lint.Lint
module Source = Repro_lint.Source
module Diag = Repro_lint.Diag
module Probe = Repro_lint.Probe
module Json = Repro_stats.Json

let usage () =
  prerr_endline
    "usage: srccheck [--no-probe] [--format=human|json] [ROOT...]   (default roots: lib bin)";
  exit 2

let () =
  let no_probe = ref false in
  let json = ref false in
  let roots = ref [] in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--no-probe" -> no_probe := true
        | "--format=human" -> json := false
        | "--format=json" -> json := true
        | "--help" | "-h" -> usage ()
        | _ when String.length arg > 0 && arg.[0] = '-' ->
            Printf.eprintf "srccheck: unknown option %s\n" arg;
            usage ()
        | root -> roots := root :: !roots)
    Sys.argv;
  let roots = match List.rev !roots with [] -> [ "lib"; "bin" ] | r -> r in
  (match List.filter (fun r -> not (Sys.file_exists r)) roots with
  | [] -> ()
  | missing ->
      Printf.eprintf "srccheck: no such file or directory: %s\n" (String.concat ", " missing);
      exit 2);
  let files, parse = Source.load_roots roots in
  let report = Lint.run files ~parse in
  if not !json then begin
    Printf.printf "srccheck: %d files under %s\n%!" report.Lint.files_scanned
      (String.concat " " roots);
    List.iter (fun d -> print_endline ("  " ^ Diag.to_string d)) report.Lint.diags
  end;
  let probe = if !no_probe then None else Some (Probe.run files) in
  let probe_diags = match probe with None -> [] | Some p -> p.Probe.diags in
  if !json then
    let base =
      match Lint.report_to_json report with Json.Obj fields -> fields | j -> [ ("report", j) ]
    in
    let probe_fields =
      match probe with
      | None -> [ ("probe", Json.String "skipped") ]
      | Some p ->
          [
            ( "probe",
              Json.Obj
                [
                  ("acquisitions", Json.Int p.Probe.acquisitions);
                  ("named_edges", Json.Int (List.length p.Probe.observed_edges));
                  ("cyclic", Json.Bool (p.Probe.runtime_cycle <> None));
                ] );
          ]
    in
    let fields =
      base @ probe_fields
      @ [ ("probe_diags", Json.List (List.map Diag.to_json probe_diags)) ]
    in
    print_endline (Json.to_string ~indent:true (Json.Obj fields))
  else begin
    (match probe with
    | None -> ()
    | Some p ->
        Printf.printf "dynamic probe: %d acquisition(s), %d named edge(s), %s\n"
          p.Probe.acquisitions
          (List.length p.Probe.observed_edges)
          (match p.Probe.runtime_cycle with Some _ -> "CYCLIC" | None -> "acyclic"));
    List.iter (fun d -> print_endline ("  " ^ Diag.to_string d)) probe_diags;
    Printf.printf "srccheck: %d diagnostic(s), %d suppressed\n"
      (List.length report.Lint.diags + List.length probe_diags)
      report.Lint.suppressed
  end;
  let total = List.length report.Lint.diags + List.length probe_diags in
  if report.Lint.parse_errors > 0 then exit 2 else exit (if total > 0 then 1 else 0)
