(* Architecture checker for the layered WineFS core (`dune build
   @archcheck`, wired into `dune runtest`).

   Enforces the boundaries the Txn/Inode/Extent_map/Datapath/Namespace
   split established:

   - [fs.ml] stays an orchestrating facade: at most 600 lines.
   - [Undo_journal] is reachable only through the Txn layer (txn.ml owns
     journaling; layout.ml sizes the journal region).
   - [Dir_index] is owned by the namespace layer (inode.ml declares the
     DRAM field it lives in).
   - [Fd_table] is a facade concern: no layer below fs.ml sees fds.

   Plain substring scan — the goal is to make accidental cross-layer
   reach-through fail CI loudly, not to parse OCaml. *)

let max_fs_lines = 600

(* module-name substring, files (basenames) allowed to mention it *)
let rules =
  [
    ("Undo_journal", [ "txn.ml"; "txn.mli"; "layout.ml" ]);
    ("Repro_journal", [ "txn.ml"; "txn.mli"; "layout.ml" ]);
    ("Dir_index", [ "namespace.ml"; "namespace.mli"; "inode.ml"; "inode.mli" ]);
    ("Fd_table", [ "fs.ml" ]);
  ]

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "lib/core" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli")
    |> List.sort compare
  in
  let failures = ref 0 in
  let fail fmt = Printf.ksprintf (fun s -> incr failures; prerr_endline ("archcheck: " ^ s)) fmt in
  let contains line sub =
    let n = String.length line and m = String.length sub in
    let rec at i = i + m <= n && (String.sub line i m = sub || at (i + 1)) in
    m > 0 && at 0
  in
  List.iter
    (fun base ->
      let lines = read_lines (Filename.concat dir base) in
      if base = "fs.ml" && List.length lines > max_fs_lines then
        fail "fs.ml has %d lines (facade limit is %d)" (List.length lines) max_fs_lines;
      List.iter
        (fun (needle, allowed) ->
          if not (List.mem base allowed) then
            List.iteri
              (fun i line ->
                if contains line needle then
                  fail "%s/%s:%d references %s (allowed only in: %s)" dir base (i + 1)
                    needle (String.concat ", " allowed))
              lines)
        rules)
    files;
  if !failures > 0 then begin
    Printf.eprintf "archcheck: %d violation(s)\n" !failures;
    exit 1
  end
  else print_endline "archcheck: core layering OK"
