(* winefs_cli — operate a persistent WineFS image stored as a host file.

   Example session:
     winefs_cli init   image.pm --size 64
     winefs_cli mkdir  image.pm /docs
     winefs_cli put    image.pm /docs/readme ./README.md
     winefs_cli ls     image.pm /docs
     winefs_cli cat    image.pm /docs/readme
     winefs_cli stat   image.pm /docs/readme
     winefs_cli df     image.pm
     winefs_cli rm     image.pm /docs/readme *)

open Cmdliner
open Repro_util
module Device = Repro_pmem.Device
module Types = Repro_vfs.Types
module Fs = Winefs.Fs
module Fsck = Repro_fsck.Fsck

let cpu () = Cpu.make ~id:0 ()

let with_image image f =
  let dev = Device.load_file image in
  let fs = Fs.mount dev (Types.config ()) in
  let c = cpu () in
  let r = f fs c in
  Fs.unmount fs c;
  Device.save_file dev image;
  r

let handle_errors f =
  try
    f ();
    0
  with
  | Types.Error (e, msg) ->
      Printf.eprintf "error: %s: %s\n" (Types.errno_to_string e) msg;
      1
  | Sys_error m | Invalid_argument m ->
      Printf.eprintf "error: %s\n" m;
      1

let image_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"IMAGE")
let path_arg n = Arg.(required & pos n (some string) None & info [] ~docv:"PATH")

let init_cmd =
  let size = Arg.(value & opt int 64 & info [ "size" ] ~docv:"MIB" ~doc:"Image size in MiB") in
  let cpus = Arg.(value & opt int 4 & info [ "cpus" ] ~doc:"Logical CPUs (pools/journals)") in
  let run image size cpus =
    handle_errors (fun () ->
        let dev = Device.create ~size:(size * Units.mib) () in
        let fs = Fs.format dev (Types.config ~cpus ()) in
        Fs.unmount fs (cpu ());
        Device.save_file dev image;
        Printf.printf "formatted %s: %d MiB WineFS image, %d per-CPU pools\n" image size cpus)
  in
  Cmd.v (Cmd.info "init" ~doc:"Create and format a new WineFS image")
    Term.(const run $ image_arg $ size $ cpus)

let ls_cmd =
  let run image path =
    handle_errors (fun () ->
        with_image image (fun fs c ->
            List.iter print_endline (Fs.readdir fs c path)))
  in
  Cmd.v (Cmd.info "ls" ~doc:"List a directory") Term.(const run $ image_arg $ path_arg 1)

let mkdir_cmd =
  let run image path =
    handle_errors (fun () -> with_image image (fun fs c -> Fs.mkdir fs c path))
  in
  Cmd.v (Cmd.info "mkdir" ~doc:"Create a directory") Term.(const run $ image_arg $ path_arg 1)

let put_cmd =
  let local = Arg.(required & pos 2 (some string) None & info [] ~docv:"LOCAL_FILE") in
  let run image path local =
    handle_errors (fun () ->
        let ic = open_in_bin local in
        let len = in_channel_length ic in
        let data = really_input_string ic len in
        close_in ic;
        with_image image (fun fs c ->
            let fd =
              if Fs.exists fs c path then Fs.openf fs c path { Types.o_rdwr with trunc = true }
              else Fs.create fs c path
            in
            ignore (Fs.pwrite fs c fd ~off:0 ~src:data);
            Fs.close fs c fd;
            Printf.printf "wrote %d bytes to %s\n" len path))
  in
  Cmd.v (Cmd.info "put" ~doc:"Copy a local file into the image")
    Term.(const run $ image_arg $ path_arg 1 $ local)

let cat_cmd =
  let run image path =
    handle_errors (fun () ->
        with_image image (fun fs c ->
            let fd = Fs.openf fs c path Types.o_rdonly in
            print_string (Fs.pread fs c fd ~off:0 ~len:(Fs.file_size fs fd));
            Fs.close fs c fd))
  in
  Cmd.v (Cmd.info "cat" ~doc:"Print a file's contents") Term.(const run $ image_arg $ path_arg 1)

let rm_cmd =
  let run image path =
    handle_errors (fun () -> with_image image (fun fs c -> Fs.unlink fs c path))
  in
  Cmd.v (Cmd.info "rm" ~doc:"Remove a file") Term.(const run $ image_arg $ path_arg 1)

let stat_cmd =
  let run image path =
    handle_errors (fun () ->
        with_image image (fun fs c ->
            let st = Fs.stat fs c path in
            Printf.printf "ino=%d kind=%s size=%d blocks=%d nlink=%d\n" st.Types.st_ino
              (match st.st_kind with Types.Regular -> "file" | Types.Directory -> "dir")
              st.st_size st.st_blocks st.st_nlink;
            List.iter
              (fun (fo, phys, len) ->
                Printf.printf "  extent file_off=%-10d phys=%-10d len=%-10d %s\n" fo phys len
                  (if Units.is_aligned phys Units.huge_page && len >= Units.huge_page then
                     "(hugepage-capable)"
                   else ""))
              (Fs.file_extents fs c path)))
  in
  Cmd.v (Cmd.info "stat" ~doc:"Show file metadata and extent layout")
    Term.(const run $ image_arg $ path_arg 1)

let df_cmd =
  let run image =
    handle_errors (fun () ->
        with_image image (fun fs _ ->
            let s = Fs.statfs fs in
            Printf.printf "capacity: %d MiB\nused:     %d MiB (%.1f%%)\nfree:     %d MiB\n"
              (s.Types.capacity / Units.mib) (s.used / Units.mib)
              (100. *. Types.utilization s)
              (s.free / Units.mib);
            Printf.printf "free aligned 2MB extents (hugepage supply): %d\n" s.aligned_free_2m))
  in
  Cmd.v (Cmd.info "df" ~doc:"Show space and hugepage-supply statistics")
    Term.(const run $ image_arg)

let fsck_cmd =
  let repair =
    Arg.(value & flag & info [ "repair" ] ~doc:"Repair the image (and save it) instead of only checking")
  in
  let format =
    Arg.(value & opt string "human" & info [ "format" ] ~doc:"Output format: human or json")
  in
  let run image repair format =
    (match format with
    | "human" | "json" -> ()
    | f ->
        Printf.eprintf "--format must be human or json (got %s)\n" f;
        exit 2);
    try
      let dev = Device.load_file image in
      let r = Fsck.run ~repair dev in
      if repair then Device.save_file dev image;
      if format = "json" then
        print_endline (Repro_stats.Json.to_string ~indent:true (Fsck.to_json r))
      else print_string (Fsck.to_string r);
      if r.Fsck.clean then 0 else 1
    with
    | Types.Error (e, msg) ->
        Printf.eprintf "error: %s: %s\n" (Types.errno_to_string e) msg;
        1
    | Sys_error m | Invalid_argument m ->
        Printf.eprintf "error: %s\n" m;
        1
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:"Offline multi-phase check (and with --repair, repair) of an unmounted image")
    Term.(const run $ image_arg $ repair $ format)

let stats_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the registry snapshot as JSON")
  in
  let run image json =
    handle_errors (fun () ->
        let module Stats = Repro_stats.Stats in
        Stats.reset ();
        Stats.set_enabled true;
        let dev = Device.load_file image in
        (* A read-only fsck pass before mounting populates the fsck.*
           counters (phase durations, repairs by category) alongside the
           mount/walk metrics. *)
        ignore (Fsck.run ~repair:false dev);
        let fs = Fs.mount dev (Types.config ()) in
        let c = cpu () in
        (* Walk the mounted tree read-only — stat directories, read every
           file — so per-op latencies and device counters populate.  The
           host image file is deliberately not rewritten. *)
        let rec walk path =
          List.iter
            (fun name ->
              let p = if path = "/" then "/" ^ name else path ^ "/" ^ name in
              let st = Fs.stat fs c p in
              match st.Types.st_kind with
              | Types.Directory -> walk p
              | Types.Regular ->
                  let fd = Fs.openf fs c p Types.o_rdonly in
                  ignore (Fs.pread fs c fd ~off:0 ~len:(min st.st_size (4 * Units.mib)));
                  Fs.close fs c fd)
            (Fs.readdir fs c path)
        in
        walk "/";
        Stats.set_enabled false;
        if json then print_endline (Repro_stats.Json.to_string (Stats.to_json ()))
        else Format.printf "%a@?" Stats.pp Stats.global)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Mount an image, replay a read-only walk, and dump the metrics registry")
    Term.(const run $ image_arg $ json)

let () =
  let info = Cmd.info "winefs_cli" ~doc:"Operate WineFS images on simulated PM" in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ init_cmd; ls_cmd; mkdir_cmd; put_cmd; cat_cmd; rm_cmd; stat_cmd; df_cmd; fsck_cmd;
            stats_cmd ]))
